package circuit

import (
	"math"
	"testing"

	"cntfet/internal/core"
	"cntfet/internal/device"
	"cntfet/internal/fettoy"
)

func op(t *testing.T, c *Circuit) *Solution {
	t.Helper()
	sol, err := c.OperatingPoint(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return sol
}

func TestVoltageDividerDC(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground, Wave: DC(10)})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "out", Ohms: 1e3})
	c.MustAdd(&Resistor{Label: "R2", A: "out", B: Ground, Ohms: 3e3})
	sol := op(t, c)
	if v := sol.Voltage("out"); math.Abs(v-7.5) > 1e-9 {
		t.Fatalf("divider out = %g, want 7.5", v)
	}
	// Branch current: 10V across 4k -> 2.5mA flowing out of +.
	if i := sol.BranchCurrent("V1"); math.Abs(i+2.5e-3) > 1e-9 {
		t.Fatalf("source current = %g, want -2.5e-3", i)
	}
}

func TestCurrentSourceDC(t *testing.T) {
	c := New()
	c.MustAdd(&ISource{Label: "I1", P: "n", N: Ground, Wave: DC(1e-3)})
	c.MustAdd(&Resistor{Label: "R1", A: "n", B: Ground, Ohms: 2e3})
	sol := op(t, c)
	if v := sol.Voltage("n"); math.Abs(v-2) > 1e-9 {
		t.Fatalf("node = %g, want 2", v)
	}
}

func TestDuplicateElementRejected(t *testing.T) {
	c := New()
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: Ground, Ohms: 1})
	if err := c.Add(&Resistor{Label: "R1", A: "b", B: Ground, Ohms: 1}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := c.Add(&Resistor{Label: "", A: "b", B: Ground, Ohms: 1}); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestGroundAndUnknownProbesReadZero(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "a", N: Ground, Wave: DC(1)})
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: Ground, Ohms: 1})
	sol := op(t, c)
	if sol.Voltage(Ground) != 0 || sol.Voltage("nope") != 0 {
		t.Fatal("ground/unknown probe should read 0")
	}
	if sol.BranchCurrent("R1") != 0 {
		t.Fatal("non-branch element current should read 0")
	}
}

func TestDiodeResistorOperatingPoint(t *testing.T) {
	// 5V through 1k into a diode: V_D ≈ 0.6-0.8 V, KCL must hold.
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground, Wave: DC(5)})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "d", Ohms: 1e3})
	c.MustAdd(&Diode{Label: "D1", A: "d", B: Ground, Is: 1e-14})
	sol := op(t, c)
	vd := sol.Voltage("d")
	if vd < 0.5 || vd > 0.9 {
		t.Fatalf("diode drop = %g", vd)
	}
	iR := (5 - vd) / 1e3
	vt := 8.617333262e-5 * 300
	iD := 1e-14 * (math.Exp(vd/vt) - 1)
	if math.Abs(iR-iD)/iR > 1e-6 {
		t.Fatalf("KCL violated: iR=%g iD=%g", iR, iD)
	}
}

func TestDiodeReverseLeakage(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground, Wave: DC(-5)})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "d", Ohms: 1e3})
	c.MustAdd(&Diode{Label: "D1", A: "d", B: Ground, Is: 1e-14})
	sol := op(t, c)
	// Reverse biased: nearly the full -5 V appears across the diode.
	if vd := sol.Voltage("d"); vd > -4.9 {
		t.Fatalf("reverse diode node = %g", vd)
	}
}

func TestEmptyCircuit(t *testing.T) {
	sol, err := New().OperatingPoint(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Voltage("x") != 0 {
		t.Fatal("empty circuit probe")
	}
}

func TestRCTransientBackwardEuler(t *testing.T) {
	// RC charging: v(t) = V·(1 - e^(-t/RC)), RC = 1 µs.
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground, Wave: DC(1)})
	c.MustAdd(&Resistor{Label: "R1", A: "in", B: "out", Ohms: 1e3})
	cap := &Capacitor{Label: "C1", A: "out", B: Ground, Farads: 1e-9}
	c.MustAdd(cap)
	// Start the capacitor discharged: hold the source at 0 for t<=0 by
	// using a pulse that rises immediately after t=0.
	c.Element("V1").(*VSource).Wave = Pulse{V1: 0, V2: 1, Delay: 0, Rise: 1e-9, Width: 1, Period: 0}
	sols, err := c.Transient(TranOptions{Step: 2e-8, Stop: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	// After 5 time constants the output is within 1% of final value.
	last := sols[len(sols)-1].Voltage("out")
	if last < 0.97 || last > 1.001 {
		t.Fatalf("v(5τ) = %g", last)
	}
	// At t ≈ RC the response is ≈ 63%: check within BE's first-order
	// error for this step count.
	var atTau float64
	for _, s := range sols {
		if s.Time >= 1e-6 {
			atTau = s.Voltage("out")
			break
		}
	}
	if math.Abs(atTau-0.632) > 0.03 {
		t.Fatalf("v(τ) = %g, want ≈0.632", atTau)
	}
}

func TestRCTransientTrapezoidalMoreAccurate(t *testing.T) {
	// Trapezoidal's second-order advantage shows on smooth stimuli:
	// drive an RC with a sine and compare both rules at a coarse step
	// against a fine-step reference.
	run := func(step float64, trap bool) float64 {
		c := New()
		c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground,
			Wave: Sin{Amplitude: 1, Freq: 1e5}})
		c.MustAdd(&Resistor{Label: "R1", A: "in", B: "out", Ohms: 1e3})
		c.MustAdd(&Capacitor{Label: "C1", A: "out", B: Ground, Farads: 1e-9})
		sols, err := c.Transient(TranOptions{Step: step, Stop: 2.0001e-5, Trapezoidal: trap})
		if err != nil {
			t.Fatal(err)
		}
		return sols[len(sols)-1].Voltage("out")
	}
	ref := run(2.5e-8, true)
	errBE := math.Abs(run(4e-7, false) - ref)
	errTR := math.Abs(run(4e-7, true) - ref)
	if errTR >= errBE {
		t.Fatalf("trapezoidal error %g not below BE error %g", errTR, errBE)
	}
}

func TestWaveforms(t *testing.T) {
	p := Pulse{V1: 0, V2: 1, Delay: 1, Rise: 1, Width: 2, Fall: 1, Period: 10}
	cases := []struct{ t, want float64 }{
		{0, 0}, {1.5, 0.5}, {2.5, 1}, {4.5, 0.5}, {6, 0}, {11.5, 0.5},
	}
	for _, c := range cases {
		if got := p.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Pulse.At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	s := Sin{Offset: 1, Amplitude: 2, Freq: 1, Delay: 0.5}
	if s.At(0.2) != 1 {
		t.Error("Sin before delay should hold offset")
	}
	if got := s.At(0.75); math.Abs(got-3) > 1e-9 {
		t.Errorf("Sin quarter wave = %g", got)
	}
	if DC(3).At(99) != 3 {
		t.Error("DC waveform")
	}
}

func newFastModel(t *testing.T) *core.Model {
	t.Helper()
	ref, err := fettoy.New(fettoy.Default())
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.Model2(ref)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCNTFETCommonSourceOperatingPoint(t *testing.T) {
	model := newFastModel(t)
	c := New()
	c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DC(0.6)})
	c.MustAdd(&VSource{Label: "VG", P: "g", N: Ground, Wave: DC(0.5)})
	c.MustAdd(&Resistor{Label: "RL", A: "vdd", B: "d", Ohms: 20e3})
	fet := &CNTFET{Label: "M1", D: "d", G: "g", S: Ground, Model: model}
	c.MustAdd(fet)
	sol := op(t, c)
	vd := sol.Voltage("d")
	if vd <= 0 || vd >= 0.6 {
		t.Fatalf("drain = %g, want inside supply range", vd)
	}
	// KCL: resistor current equals device current.
	iR := (0.6 - vd) / 20e3
	iD, err := fet.DrainCurrent(sol)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iR-iD)/iR > 1e-5 {
		t.Fatalf("KCL: iR=%g iD=%g", iR, iD)
	}
}

func TestCNTFETResistiveInverterVTC(t *testing.T) {
	model := newFastModel(t)
	c := New()
	c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DC(0.6)})
	c.MustAdd(&VSource{Label: "VIN", P: "in", N: Ground, Wave: DC(0)})
	c.MustAdd(&Resistor{Label: "RL", A: "vdd", B: "out", Ohms: 200e3})
	c.MustAdd(&CNTFET{Label: "M1", D: "out", G: "in", S: Ground, Model: model})
	pts, err := c.DCSweep("VIN", 0, 0.6, 0.05, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first := pts[0].Solution.Voltage("out")
	last := pts[len(pts)-1].Solution.Voltage("out")
	if first < 0.55 {
		t.Fatalf("VTC high level = %g", first)
	}
	if last > 0.25 {
		t.Fatalf("VTC low level = %g", last)
	}
	// Monotone falling.
	for i := 1; i < len(pts); i++ {
		if pts[i].Solution.Voltage("out") > pts[i-1].Solution.Voltage("out")+1e-6 {
			t.Fatalf("VTC not monotone at %g", pts[i].Value)
		}
	}
}

func TestComplementaryCNTFETInverter(t *testing.T) {
	model := newFastModel(t)
	c := New()
	c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DC(0.6)})
	c.MustAdd(&VSource{Label: "VIN", P: "in", N: Ground, Wave: DC(0)})
	c.MustAdd(&CNTFET{Label: "MP", D: "out", G: "in", S: "vdd", Model: model, Pol: PType})
	c.MustAdd(&CNTFET{Label: "MN", D: "out", G: "in", S: Ground, Model: model})
	pts, err := c.DCSweep("VIN", 0, 0.6, 0.05, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hi := pts[0].Solution.Voltage("out")
	lo := pts[len(pts)-1].Solution.Voltage("out")
	if hi < 0.55 || lo > 0.05 {
		t.Fatalf("CMOS-style inverter rails: hi=%g lo=%g", hi, lo)
	}
	// The switching threshold of a symmetric inverter sits near VDD/2.
	var vm float64
	for i := 1; i < len(pts); i++ {
		a := pts[i-1].Solution.Voltage("out")
		b := pts[i].Solution.Voltage("out")
		mid := 0.3
		if (a-mid)*(b-mid) <= 0 {
			vm = pts[i].Value
			break
		}
	}
	if vm < 0.2 || vm > 0.4 {
		t.Fatalf("switching threshold at %g", vm)
	}
}

func TestDCSweepErrors(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "a", N: Ground, Wave: DC(1)})
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: Ground, Ohms: 1})
	if _, err := c.DCSweep("nope", 0, 1, 0.1, DCOptions{}); err == nil {
		t.Fatal("missing source accepted")
	}
	if _, err := c.DCSweep("R1", 0, 1, 0.1, DCOptions{}); err == nil {
		t.Fatal("non-source element accepted")
	}
	if _, err := c.DCSweep("V1", 0, 1, -0.1, DCOptions{}); err == nil {
		t.Fatal("bad step accepted")
	}
}

func TestDCSweepRestoresWave(t *testing.T) {
	c := New()
	v := &VSource{Label: "V1", P: "a", N: Ground, Wave: DC(42)}
	c.MustAdd(v)
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: Ground, Ohms: 1})
	if _, err := c.DCSweep("V1", 0, 1, 0.5, DCOptions{}); err != nil {
		t.Fatal(err)
	}
	if v.Wave.At(0) != 42 {
		t.Fatal("sweep clobbered the source waveform")
	}
}

func TestTransientValidation(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "a", N: Ground, Wave: DC(1)})
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: Ground, Ohms: 1})
	if _, err := c.Transient(TranOptions{Step: 0, Stop: 1}); err == nil {
		t.Fatal("zero step accepted")
	}
	if _, err := c.Transient(TranOptions{Step: 1, Stop: 0.5}); err == nil {
		t.Fatal("stop before first step accepted")
	}
}

func TestPolarityString(t *testing.T) {
	if NType.String() != "n" || PType.String() != "p" {
		t.Fatal("polarity names")
	}
}

// numericOnly wraps a model to hide its analytic Conductances method,
// forcing the element onto the finite-difference path.
type numericOnly struct{ m device.Solver }

func (n numericOnly) IDS(b fettoy.Bias) (float64, error) { return n.m.IDS(b) }

func TestCNTFETAnalyticMatchesNumericStampPath(t *testing.T) {
	model := newFastModel(t)
	cases := []struct {
		name       string
		pol        Polarity
		vd, vg, vs float64
	}{
		{"n forward", NType, 0.4, 0.5, 0},
		{"n reversed", NType, -0.3, 0.5, 0},
		{"p forward", PType, 0.1, 0, 0.6},  // p device: source at vdd
		{"p reversed", PType, 0.6, 0, 0.4}, // drain above source
		{"n lifted source", NType, 0.5, 0.6, 0.2},
	}
	for _, c := range cases {
		analytic := &CNTFET{Label: "MA", D: "d", G: "g", S: "s", Model: model, Pol: c.pol}
		numeric := &CNTFET{Label: "MN", D: "d", G: "g", S: "s", Model: numericOnly{model}, Pol: c.pol}
		ia, gma, gdsa, err := analytic.conductances(c.vd, c.vg, c.vs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		in, gmn, gdsn, err := numeric.conductances(c.vd, c.vg, c.vs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(ia-in) > 1e-12+1e-9*math.Abs(in) {
			t.Fatalf("%s: current %g vs %g", c.name, ia, in)
		}
		// Forward differencing is only first-order accurate; compare
		// loosely and on scale.
		scale := math.Abs(gmn) + math.Abs(gdsn) + 1e-9
		if math.Abs(gma-gmn) > 0.02*scale {
			t.Fatalf("%s: gm analytic %g vs numeric %g", c.name, gma, gmn)
		}
		if math.Abs(gdsa-gdsn) > 0.02*scale {
			t.Fatalf("%s: gds analytic %g vs numeric %g", c.name, gdsa, gdsn)
		}
	}
}

func TestCNTFETNumericFallbackStillConverges(t *testing.T) {
	model := newFastModel(t)
	c := New()
	c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DC(0.6)})
	c.MustAdd(&VSource{Label: "VG", P: "g", N: Ground, Wave: DC(0.5)})
	c.MustAdd(&Resistor{Label: "RL", A: "vdd", B: "d", Ohms: 20e3})
	c.MustAdd(&CNTFET{Label: "M1", D: "d", G: "g", S: Ground, Model: numericOnly{model}})
	sol := op(t, c)
	if vd := sol.Voltage("d"); vd <= 0 || vd >= 0.6 {
		t.Fatalf("drain = %g", vd)
	}
}

func TestVCCSStamp(t *testing.T) {
	// 1 V across the control pair, gm = 2 mS, into a 1k load:
	// i = 2 mA leaves P... the SPICE convention drives N positive.
	c := New()
	c.MustAdd(&VSource{Label: "VC", P: "c", N: Ground, Wave: DC(1)})
	c.MustAdd(&Resistor{Label: "RC", A: "c", B: Ground, Ohms: 1e6})
	c.MustAdd(&VCCS{Label: "G1", P: "out", N: Ground, CP: "c", CN: Ground, Gain: 2e-3})
	c.MustAdd(&Resistor{Label: "RL", A: "out", B: Ground, Ohms: 1e3})
	sol := op(t, c)
	if v := sol.Voltage("out"); math.Abs(v+2) > 1e-9 {
		t.Fatalf("VCCS output = %g, want -2 (current leaves P)", v)
	}
}

func TestVCVSStamp(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "VC", P: "c", N: Ground, Wave: DC(0.25)})
	c.MustAdd(&Resistor{Label: "RC", A: "c", B: Ground, Ohms: 1e6})
	c.MustAdd(&VCVS{Label: "E1", P: "out", N: Ground, CP: "c", CN: Ground, Gain: 8})
	c.MustAdd(&Resistor{Label: "RL", A: "out", B: Ground, Ohms: 50})
	sol := op(t, c)
	if v := sol.Voltage("out"); math.Abs(v-2) > 1e-9 {
		t.Fatalf("VCVS output = %g, want 2", v)
	}
	// The load draws 40 mA through the VCVS branch.
	if i := sol.BranchCurrent("E1"); math.Abs(i+40e-3) > 1e-9 {
		t.Fatalf("VCVS branch current = %g", i)
	}
}

func TestCNTRingOscillator(t *testing.T) {
	// Three complementary CNT inverters in a ring with load caps: the
	// canonical oscillation test. This exercises hundreds of transient
	// Newton solves through the analytic-conductance path.
	model := newFastModel(t)
	c := New()
	c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DC(0.6)})
	nodes := []string{"a", "b", "cc"}
	for i := range nodes {
		in := nodes[i]
		out := nodes[(i+1)%3]
		c.MustAdd(&CNTFET{Label: "MP" + in, D: out, G: in, S: "vdd", Model: model, Pol: PType})
		c.MustAdd(&CNTFET{Label: "MN" + in, D: out, G: in, S: Ground, Model: model})
		c.MustAdd(&Capacitor{Label: "CL" + in, A: out, B: Ground, Farads: 2e-15})
	}
	// Break the symmetry so the DC point is not the metastable middle:
	// a small current kick on one node.
	c.MustAdd(&ISource{Label: "IK", P: "a", N: Ground,
		Wave: Pulse{V1: 0, V2: 2e-6, Delay: 0, Rise: 1e-12, Width: 50e-12, Fall: 1e-12, Period: 1}})
	sols, err := c.Transient(TranOptions{Step: 5e-12, Stop: 3e-9, DC: DCOptions{MaxIter: 200}})
	if err != nil {
		t.Fatal(err)
	}
	// Oscillation: node "a" must cross VDD/2 several times after the
	// kick dies out.
	crossings := 0
	mid := 0.3
	for i := 1; i < len(sols); i++ {
		if sols[i].Time < 0.2e-9 {
			continue
		}
		v0, v1 := sols[i-1].Voltage("a"), sols[i].Voltage("a")
		if (v0-mid)*(v1-mid) < 0 {
			crossings++
		}
	}
	if crossings < 4 {
		t.Fatalf("ring oscillator: only %d mid-rail crossings", crossings)
	}
}

func TestCNTNANDGate(t *testing.T) {
	// Static CMOS-style NAND from complementary CNTFETs: two p devices
	// in parallel to VDD, two n devices in series to ground.
	model := newFastModel(t)
	build := func(va, vb float64) float64 {
		c := New()
		c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DC(0.6)})
		c.MustAdd(&VSource{Label: "VA", P: "a", N: Ground, Wave: DC(va)})
		c.MustAdd(&VSource{Label: "VB", P: "b", N: Ground, Wave: DC(vb)})
		c.MustAdd(&CNTFET{Label: "MPA", D: "out", G: "a", S: "vdd", Model: model, Pol: PType})
		c.MustAdd(&CNTFET{Label: "MPB", D: "out", G: "b", S: "vdd", Model: model, Pol: PType})
		c.MustAdd(&CNTFET{Label: "MNA", D: "out", G: "a", S: "mid", Model: model})
		c.MustAdd(&CNTFET{Label: "MNB", D: "mid", G: "b", S: Ground, Model: model})
		sol, err := c.OperatingPoint(DCOptions{MaxIter: 300})
		if err != nil {
			t.Fatalf("va=%g vb=%g: %v", va, vb, err)
		}
		return sol.Voltage("out")
	}
	hi, lo := 0.6, 0.0
	truth := []struct {
		a, b     float64
		wantHigh bool
	}{
		{lo, lo, true}, {lo, hi, true}, {hi, lo, true}, {hi, hi, false},
	}
	for _, tt := range truth {
		out := build(tt.a, tt.b)
		if tt.wantHigh && out < 0.5 {
			t.Fatalf("NAND(%g,%g) = %g, want high", tt.a, tt.b, out)
		}
		if !tt.wantHigh && out > 0.1 {
			t.Fatalf("NAND(%g,%g) = %g, want low", tt.a, tt.b, out)
		}
	}
}

func TestTransientAdaptiveMatchesFixedStep(t *testing.T) {
	build := func() *Circuit {
		c := New()
		c.MustAdd(&VSource{Label: "V1", P: "in", N: Ground,
			Wave: Pulse{V1: 0, V2: 1, Delay: 1e-7, Rise: 1e-9, Width: 1}})
		c.MustAdd(&Resistor{Label: "R1", A: "in", B: "out", Ohms: 1e3})
		c.MustAdd(&Capacitor{Label: "C1", A: "out", B: Ground, Farads: 1e-9})
		return c
	}
	adaptive, err := build().TransientAdaptive(TranAdaptiveOptions{Stop: 5e-6, Tol: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := build().Transient(TranOptions{Step: 5e-9, Stop: 5e-6})
	if err != nil {
		t.Fatal(err)
	}
	// Compare final values.
	va := adaptive[len(adaptive)-1].Voltage("out")
	vf := fixed[len(fixed)-1].Voltage("out")
	if math.Abs(va-vf) > 5e-3 {
		t.Fatalf("adaptive %g vs fixed %g", va, vf)
	}
	// Adaptive must use far fewer accepted steps than the fine fixed
	// grid while still resolving the edge.
	if len(adaptive) > len(fixed)/3 {
		t.Fatalf("adaptive took %d steps vs fixed %d", len(adaptive), len(fixed))
	}
	// Steps must concentrate around the stimulus edge at 1e-7: the
	// smallest accepted interval should be near the edge.
	minDt, minAt := math.Inf(1), 0.0
	for i := 1; i < len(adaptive); i++ {
		dt := adaptive[i].Time - adaptive[i-1].Time
		if dt < minDt {
			minDt, minAt = dt, adaptive[i].Time
		}
	}
	if minAt < 0.5e-7 || minAt > 5e-7 {
		t.Fatalf("smallest step (%g) at t=%g, want near the edge", minDt, minAt)
	}
}

func TestTransientAdaptiveValidation(t *testing.T) {
	c := New()
	c.MustAdd(&VSource{Label: "V1", P: "a", N: Ground, Wave: DC(1)})
	c.MustAdd(&Resistor{Label: "R1", A: "a", B: Ground, Ohms: 1})
	if _, err := c.TransientAdaptive(TranAdaptiveOptions{Stop: 0}); err == nil {
		t.Fatal("zero stop accepted")
	}
	if _, err := c.TransientAdaptive(TranAdaptiveOptions{Stop: 1, MinStep: 1, MaxStep: 0.1}); err == nil {
		t.Fatal("inverted step bounds accepted")
	}
}

func TestTransientAdaptiveCNTInverter(t *testing.T) {
	model := newFastModel(t)
	c := New()
	c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DC(0.6)})
	c.MustAdd(&VSource{Label: "VIN", P: "in", N: Ground,
		Wave: Pulse{V1: 0, V2: 0.6, Delay: 0.5e-9, Rise: 10e-12, Width: 2e-9, Fall: 10e-12, Period: 1}})
	c.MustAdd(&CNTFET{Label: "MP", D: "out", G: "in", S: "vdd", Model: model, Pol: PType})
	c.MustAdd(&CNTFET{Label: "MN", D: "out", G: "in", S: Ground, Model: model})
	c.MustAdd(&Capacitor{Label: "CL", A: "out", B: Ground, Farads: 10e-15})
	sols, err := c.TransientAdaptive(TranAdaptiveOptions{Stop: 2e-9, Tol: 2e-3})
	if err != nil {
		t.Fatal(err)
	}
	last := sols[len(sols)-1].Voltage("out")
	if last > 0.1 {
		t.Fatalf("inverter did not switch low: %g", last)
	}
}
