package circuit

import (
	"fmt"

	"cntfet/internal/device"
	"cntfet/internal/fettoy"
)

// Polarity selects n- or p-type behaviour. The ballistic theory models
// an n-type device; the p-type is its complementary mirror (standard
// practice in CNFET logic studies, where p-tubes are electrically
// symmetric to n-tubes).
type Polarity int

// Polarities.
const (
	NType Polarity = iota
	PType
)

func (p Polarity) String() string {
	if p == PType {
		return "p"
	}
	return "n"
}

// CNTFET is a three-terminal ballistic CNT transistor element backed
// by any model satisfying the core device.Solver capability; when the
// model additionally provides device.GradientSolver (both library
// models do) the Newton Jacobian uses analytic conductances instead of
// finite differences. Gate current is zero (the DC model has an
// insulated gate); gate capacitance, when it matters, is added as
// explicit Capacitor elements.
type CNTFET struct {
	Label   string
	D, G, S string
	Model   device.Solver
	Pol     Polarity
	// Tubes multiplies the drain current (parallel nanotubes in one
	// device, as fabricated CNFET logic gates do to boost drive).
	Tubes int

	// delta is the finite-difference step for gm/gds.
	delta float64
}

// Name implements Element.
func (m *CNTFET) Name() string { return m.Label }

// Nodes implements Element.
func (m *CNTFET) Nodes() []string { return []string{m.D, m.G, m.S} }

// transform maps element terminal voltages to the n-type,
// forward-biased frame the device models are defined in. It returns
// the model bias, the current sign sigma (element current =
// sigma·mult·I(bias)), the polarity sign sp (∂u/∂vg), and whether the
// drain bias was reversed through source/drain symmetry.
func (m *CNTFET) transform(vd, vg, vs float64) (b fettoy.Bias, sigma, sp float64, reversed bool) {
	sp = 1.0
	if m.Pol == PType {
		// Mirror: a p-device with terminals (d,g,s) behaves as the
		// n-device with all voltages negated, current reversed.
		sp = -1
	}
	u := sp * (vg - vs)
	w := sp * (vd - vs)
	sigma = sp
	// The ballistic model is defined for VD >= VS; for reversed drain
	// bias exploit source/drain symmetry of the ideal device.
	if w < 0 {
		return fettoy.Bias{VG: u - w, VD: -w}, -sigma, sp, true
	}
	return fettoy.Bias{VG: u, VD: w}, sigma, sp, false
}

func (m *CNTFET) mult() float64 {
	if m.Tubes == 0 {
		return 1
	}
	return float64(m.Tubes)
}

// ids evaluates the polarity-adjusted drain current at terminal
// voltages vd, vg, vs.
func (m *CNTFET) ids(vd, vg, vs float64) (float64, error) {
	b, sigma, _, _ := m.transform(vd, vg, vs)
	i, err := m.Model.IDS(b)
	if err != nil {
		return 0, err
	}
	return sigma * m.mult() * i, nil
}

// conductances returns the element current and its terminal
// derivatives (∂i/∂vg, ∂i/∂vd at fixed vs), using the model's
// analytic path when available and central differences otherwise.
func (m *CNTFET) conductances(vd, vg, vs float64) (id, gm, gds float64, err error) {
	if cm, ok := m.Model.(device.GradientSolver); ok {
		b, sigma, sp, reversed := m.transform(vd, vg, vs)
		mi, mgm, mgds, err := cm.Conductances(b)
		if err != nil {
			return 0, 0, 0, err
		}
		k := sigma * m.mult()
		id = k * mi
		// Chain rule through the frame transform: vg only moves the
		// model's VG (by sp); vd moves VD by sp, and under reversal
		// also VG (bVG = u - w).
		gm = k * mgm * sp
		if reversed {
			gds = k * (-mgm - mgds) * sp
		} else {
			gds = k * mgds * sp
		}
		return id, gm, gds, nil
	}
	h := m.delta
	if h == 0 { //lint:allow floatcmp zero delta selects the default FD step
		h = 1e-5
	}
	id, err = m.ids(vd, vg, vs)
	if err != nil {
		return 0, 0, 0, err
	}
	idg, _ := m.ids(vd, vg+h, vs)
	idd, _ := m.ids(vd+h, vg, vs)
	return id, (idg - id) / h, (idd - id) / h, nil
}

// Stamp implements Element: a MOSFET-style nonlinear stamp with
// analytic gm/gds when the model provides them (both library models
// do), finite differences otherwise.
func (m *CNTFET) Stamp(s *Stamper) {
	vd, vg, vs := s.V(m.D), s.V(m.G), s.V(m.S)
	id, gm, gds, err := m.conductances(vd, vg, vs)
	if err != nil {
		// Signal through a stale stamp rather than panicking inside
		// assembly; the Newton driver surfaces non-convergence.
		id, gm, gds = 0, 0, 0
	}
	// Keep the Jacobian stable: tiny negative slopes from differencing
	// noise are clamped.
	if gds < 1e-12 {
		gds = 1e-12
	}
	if gm < 0 && gm > -1e-12 {
		gm = 0
	}
	// Companion: id(v) ≈ id0 + gm·Δvgs + gds·Δvds.
	s.Conductance(m.D, m.S, gds)
	s.Transconductance(m.D, m.S, m.G, m.S, gm)
	ieq := id - gm*(vg-vs) - gds*(vd-vs)
	s.CurrentInto(m.S, m.D, ieq) // ieq flows drain -> source inside
	s.GminLoad(m.D)
	s.GminLoad(m.S)
}

// DrainCurrent evaluates the element current at a solved operating
// point.
func (m *CNTFET) DrainCurrent(sol *Solution) (float64, error) {
	if sol == nil {
		return 0, fmt.Errorf("circuit: nil solution")
	}
	return m.ids(sol.Voltage(m.D), sol.Voltage(m.G), sol.Voltage(m.S))
}
