package circuit

// VCCS is a voltage-controlled current source (SPICE "G" element):
// a current Gain·v(CP,CN) flows from node P through the source to
// node N (i.e. into the circuit at N, out at P — the SPICE sign
// convention for a transconductance).
type VCCS struct {
	Label  string
	P, N   string // output nodes
	CP, CN string // controlling nodes
	Gain   float64
}

// Name implements Element.
func (g *VCCS) Name() string { return g.Label }

// Nodes implements Element.
func (g *VCCS) Nodes() []string { return []string{g.P, g.N, g.CP, g.CN} }

// Stamp implements Element.
func (g *VCCS) Stamp(s *Stamper) {
	// Current leaves P, enters N when the controlling voltage is
	// positive: the classic four-entry transconductance stamp.
	s.Transconductance(g.P, g.N, g.CP, g.CN, g.Gain)
}

// VCVS is a voltage-controlled voltage source (SPICE "E" element):
// v(P,N) = Gain·v(CP,CN). Like an independent source it adds one MNA
// branch current.
type VCVS struct {
	Label  string
	P, N   string
	CP, CN string
	Gain   float64
}

// Name implements Element.
func (e *VCVS) Name() string { return e.Label }

// Nodes implements Element.
func (e *VCVS) Nodes() []string { return []string{e.P, e.N, e.CP, e.CN} }

// BranchCount implements BranchElement.
func (e *VCVS) BranchCount() int { return 1 }

// Stamp implements Element.
func (e *VCVS) Stamp(s *Stamper) {
	row := s.BranchIndex(e.Label)
	// Branch current into P, out of N.
	ip, in := s.nodeIndex(e.P), s.nodeIndex(e.N)
	if ip >= 0 {
		s.a.Add(ip, row, 1)
		s.a.Add(row, ip, 1)
	}
	if in >= 0 {
		s.a.Add(in, row, -1)
		s.a.Add(row, in, -1)
	}
	// Constraint v(P) - v(N) - Gain·(v(CP) - v(CN)) = 0.
	if cp := s.nodeIndex(e.CP); cp >= 0 {
		s.a.Add(row, cp, -e.Gain)
	}
	if cn := s.nodeIndex(e.CN); cn >= 0 {
		s.a.Add(row, cn, e.Gain)
	}
}
