package circuit

import (
	"math"
)

// Resistor is a linear two-terminal resistor.
type Resistor struct {
	Label string
	A, B  string
	Ohms  float64
}

// Name implements Element.
func (r *Resistor) Name() string { return r.Label }

// Nodes implements Element.
func (r *Resistor) Nodes() []string { return []string{r.A, r.B} }

// Stamp implements Element.
func (r *Resistor) Stamp(s *Stamper) { s.Conductance(r.A, r.B, 1/r.Ohms) }

// Capacitor is a linear capacitor. During DC it is open; during
// transient it stamps its integration companion model.
type Capacitor struct {
	Label  string
	A, B   string
	Farads float64

	// prevCurrent is the device current at the last accepted timestep,
	// the extra state the trapezoidal companion needs. The transient
	// driver maintains it.
	prevCurrent float64
}

// Name implements Element.
func (c *Capacitor) Name() string { return c.Label }

// Nodes implements Element.
func (c *Capacitor) Nodes() []string { return []string{c.A, c.B} }

// Stamp implements Element.
func (c *Capacitor) Stamp(s *Stamper) {
	if s.Dt <= 0 {
		return // open in DC
	}
	vPrev := s.PrevV(c.A) - s.PrevV(c.B)
	if s.Trapezoidal {
		// Trapezoidal companion: g = 2C/h, ieq = g·v_prev + i_prev.
		g := 2 * c.Farads / s.Dt
		iPrev := c.prevCurrent
		s.Conductance(c.A, c.B, g)
		s.CurrentInto(c.A, c.B, g*vPrev+iPrev)
		return
	}
	// Backward Euler companion: g = C/h, ieq = g·v_prev.
	g := c.Farads / s.Dt
	s.Conductance(c.A, c.B, g)
	s.CurrentInto(c.A, c.B, g*vPrev)
}

// Current returns the capacitor current for a pair of consecutive
// solutions (used by the transient driver to roll trapezoidal state).
func (c *Capacitor) Current(now, prev *Solution, dt float64, trapezoidal bool) float64 {
	vNow := now.Voltage(c.A) - now.Voltage(c.B)
	vPrev := prev.Voltage(c.A) - prev.Voltage(c.B)
	if dt <= 0 {
		return 0
	}
	if trapezoidal {
		g := 2 * c.Farads / dt
		return g*(vNow-vPrev) - c.prevCurrent
	}
	return c.Farads * (vNow - vPrev) / dt
}

// Waveform produces a source value as a function of time.
type Waveform interface {
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is the SPICE PULSE waveform: initial value, pulsed value,
// delay, rise, fall, width and period.
type Pulse struct {
	V1, V2                           float64
	Delay, Rise, Fall, Width, Period float64
}

// At implements Waveform.
func (p Pulse) At(t float64) float64 {
	if t < p.Delay {
		return p.V1
	}
	tt := t - p.Delay
	if p.Period > 0 {
		tt = math.Mod(tt, p.Period)
	}
	rise := math.Max(p.Rise, 1e-15)
	fall := math.Max(p.Fall, 1e-15)
	switch {
	case tt < rise:
		return p.V1 + (p.V2-p.V1)*tt/rise
	case tt < rise+p.Width:
		return p.V2
	case tt < rise+p.Width+fall:
		return p.V2 + (p.V1-p.V2)*(tt-rise-p.Width)/fall
	default:
		return p.V1
	}
}

// Sin is the SPICE SIN waveform: offset, amplitude, frequency, delay.
type Sin struct {
	Offset, Amplitude, Freq, Delay float64
}

// At implements Waveform.
func (s Sin) At(t float64) float64 {
	if t < s.Delay {
		return s.Offset
	}
	return s.Offset + s.Amplitude*math.Sin(2*math.Pi*s.Freq*(t-s.Delay))
}

// VSource is an independent voltage source from P (positive) to N.
type VSource struct {
	Label string
	P, N  string
	Wave  Waveform
}

// Name implements Element.
func (v *VSource) Name() string { return v.Label }

// Nodes implements Element.
func (v *VSource) Nodes() []string { return []string{v.P, v.N} }

// BranchCount implements BranchElement.
func (v *VSource) BranchCount() int { return 1 }

// Stamp implements Element.
func (v *VSource) Stamp(s *Stamper) {
	s.VoltageBranch(s.BranchIndex(v.Label), v.P, v.N, v.Wave.At(s.Time))
}

// ISource is an independent current source pushing current from N into
// P (SPICE convention: positive current flows P -> N through the
// source, i.e. out of N into the circuit at P... here we keep the
// simpler "into P" convention and document it).
type ISource struct {
	Label string
	P, N  string
	Wave  Waveform
}

// Name implements Element.
func (i *ISource) Name() string { return i.Label }

// Nodes implements Element.
func (i *ISource) Nodes() []string { return []string{i.P, i.N} }

// Stamp implements Element.
func (i *ISource) Stamp(s *Stamper) {
	s.CurrentInto(i.P, i.N, i.Wave.At(s.Time))
}

// Diode is a junction diode with the Shockley law
// I = Is·(exp(V/(n·Vt)) - 1), linearised each Newton iteration. It is
// mainly a nonlinear test element for the solver.
type Diode struct {
	Label string
	A, B  string // anode, cathode
	Is    float64
	N     float64 // ideality (default 1)
	Temp  float64 // kelvin (default 300)
}

// Name implements Element.
func (d *Diode) Name() string { return d.Label }

// Nodes implements Element.
func (d *Diode) Nodes() []string { return []string{d.A, d.B} }

// Stamp implements Element.
func (d *Diode) Stamp(s *Stamper) {
	n := d.N
	if n == 0 { //lint:allow floatcmp zero N selects the default
		n = 1
	}
	temp := d.Temp
	if temp == 0 { //lint:allow floatcmp zero Temp selects the default
		temp = 300
	}
	vt := n * 8.617333262e-5 * temp
	v := s.V(d.A) - s.V(d.B)
	// Limit the exponential argument to keep the Jacobian finite.
	arg := v / vt
	if arg > 80 {
		arg = 80
	}
	ex := math.Exp(arg)
	i := d.Is * (ex - 1)
	g := d.Is * ex / vt
	if g < 1e-15 {
		g = 1e-15
	}
	// Companion: i(v) ≈ i0 + g·(v - v0)  ⇒ ieq = i0 - g·v0.
	s.Conductance(d.A, d.B, g)
	s.CurrentInto(d.B, d.A, i-g*v) // current leaves anode
	s.GminLoad(d.A)
	s.GminLoad(d.B)
}

// Inductor is a linear inductor. It is voltage-defined, so it owns an
// MNA branch current: a short in DC, the backward-Euler/trapezoidal
// companion in transient, jωL in AC.
type Inductor struct {
	Label  string
	A, B   string
	Henrys float64
}

// Name implements Element.
func (l *Inductor) Name() string { return l.Label }

// Nodes implements Element.
func (l *Inductor) Nodes() []string { return []string{l.A, l.B} }

// BranchCount implements BranchElement.
func (l *Inductor) BranchCount() int { return 1 }

// Stamp implements Element.
func (l *Inductor) Stamp(s *Stamper) {
	row := s.BranchIndex(l.Label)
	ia, ib := s.nodeIndex(l.A), s.nodeIndex(l.B)
	if ia >= 0 {
		s.a.Add(ia, row, 1)
		s.a.Add(row, ia, 1)
	}
	if ib >= 0 {
		s.a.Add(ib, row, -1)
		s.a.Add(row, ib, -1)
	}
	if s.Dt <= 0 {
		// DC: v(A) - v(B) = 0 (ideal short); nothing more to stamp.
		return
	}
	var iPrev, vPrev float64
	if s.prev != nil {
		iPrev = s.prev.BranchCurrent(l.Label)
		vPrev = s.prev.Voltage(l.A) - s.prev.Voltage(l.B)
	}
	if s.Trapezoidal {
		// v = (2L/h)(I - Iprev) - vPrev.
		g := 2 * l.Henrys / s.Dt
		s.a.Add(row, row, -g)
		s.rhs[row] += -g*iPrev - vPrev
		return
	}
	// Backward Euler: v = (L/h)(I - Iprev).
	g := l.Henrys / s.Dt
	s.a.Add(row, row, -g)
	s.rhs[row] += -g * iPrev
}

// StampAC implements ACElement: v = jωL·I on the branch.
func (l *Inductor) StampAC(s *ACStamper) {
	row := s.BranchIndex(l.Label)
	ia, ib := s.nodeIndex(l.A), s.nodeIndex(l.B)
	if ia >= 0 {
		s.a.Add(ia, row, 1)
		s.a.Add(row, ia, 1)
	}
	if ib >= 0 {
		s.a.Add(ib, row, -1)
		s.a.Add(row, ib, -1)
	}
	s.a.Add(row, row, complex(0, -s.Omega*l.Henrys))
}
