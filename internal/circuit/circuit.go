// Package circuit is a small SPICE-like simulator built on modified
// nodal analysis (MNA). It exists because the paper's model is
// explicitly a *circuit-level* model ("suitable for implementation in
// SPICE-like simulators where large numbers of such devices may be
// used"): the CNTFET element stamps either the reference or the
// piecewise transistor model into the Jacobian, and the inverter/logic
// examples and benchmarks run through this engine.
//
// Supported analyses: DC operating point (damped Newton with gmin
// stepping), DC sweeps with continuation, and fixed-step transient
// (backward Euler or trapezoidal) with companion models.
package circuit

import (
	"fmt"
	"sort"

	"cntfet/internal/telemetry"
)

// Ground is the reference node name; it is always voltage zero.
const Ground = "0"

// Element is anything that can stamp itself into the MNA system.
type Element interface {
	// Name returns the unique element name (R1, MN2, ...).
	Name() string
	// Nodes lists the element's terminal node names.
	Nodes() []string
	// Stamp adds the element's contribution for the current Newton
	// iterate. Linear elements ignore the iterate.
	Stamp(s *Stamper)
}

// BranchElement is an element that introduces an MNA branch-current
// unknown (voltage sources).
type BranchElement interface {
	Element
	// BranchCount reports how many branch currents the element owns.
	BranchCount() int
}

// Circuit is a netlist of elements.
type Circuit struct {
	elems []Element
	byNam map[string]Element

	// trace, when attached via SetTrace, receives structured solver
	// events from every analysis.
	trace *telemetry.Trace
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{byNam: make(map[string]Element)}
}

// Add appends an element; names must be unique.
func (c *Circuit) Add(e Element) error {
	if e.Name() == "" {
		return fmt.Errorf("circuit: element with empty name")
	}
	if _, dup := c.byNam[e.Name()]; dup {
		return fmt.Errorf("circuit: duplicate element %q", e.Name())
	}
	c.byNam[e.Name()] = e
	c.elems = append(c.elems, e)
	return nil
}

// MustAdd is Add for programmatic construction; it panics on error.
func (c *Circuit) MustAdd(e Element) {
	if err := c.Add(e); err != nil {
		panic(err)
	}
}

// Element returns the named element, or nil.
func (c *Circuit) Element(name string) Element { return c.byNam[name] }

// Elements returns the elements in insertion order.
func (c *Circuit) Elements() []Element { return c.elems }

// Nodes returns the sorted list of non-ground node names.
func (c *Circuit) Nodes() []string {
	set := map[string]bool{}
	for _, e := range c.elems {
		for _, n := range e.Nodes() {
			if n != Ground {
				set[n] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// indexer maps node names and element branches to MNA indices.
type indexer struct {
	node   map[string]int // node name -> matrix row (ground absent)
	branch map[string]int // element name -> first branch row
	n      int            // total unknowns
}

func (c *Circuit) buildIndex() *indexer {
	ix := &indexer{node: map[string]int{}, branch: map[string]int{}}
	for _, n := range c.Nodes() {
		ix.node[n] = ix.n
		ix.n++
	}
	for _, e := range c.elems {
		if be, ok := e.(BranchElement); ok && be.BranchCount() > 0 {
			ix.branch[e.Name()] = ix.n
			ix.n += be.BranchCount()
		}
	}
	return ix
}

// Solution holds node voltages and branch currents after an analysis
// step.
type Solution struct {
	ix *indexer
	x  []float64
	// Time is the transient time of this solution (0 for DC).
	Time float64
}

// Voltage returns the voltage of a node (0 for ground and for unknown
// nodes, matching SPICE's treatment of dangling probes).
func (s *Solution) Voltage(node string) float64 {
	if node == Ground || s == nil {
		return 0
	}
	i, ok := s.ix.node[node]
	if !ok {
		return 0
	}
	return s.x[i]
}

// BranchCurrent returns the branch current of a voltage-source element
// (positive from + terminal through the source to the - terminal), or
// 0 if the element has no branch.
func (s *Solution) BranchCurrent(elem string) float64 {
	i, ok := s.ix.branch[elem]
	if !ok {
		return 0
	}
	return s.x[i]
}

// Clone deep-copies the solution vector.
func (s *Solution) Clone() *Solution {
	c := *s
	c.x = append([]float64(nil), s.x...)
	return &c
}
