package circuit

import (
	"fmt"
	"math"
	"math/cmplx"

	"cntfet/internal/linalg"
	"cntfet/internal/telemetry"
)

// ACStamper assembles the complex small-signal MNA system at one
// angular frequency, linearised about a DC operating point.
type ACStamper struct {
	ix  *indexer
	a   *linalg.CMatrix
	rhs []complex128
	// Omega is the angular frequency (rad/s).
	Omega float64
	// OP is the DC operating point the circuit is linearised about.
	OP *Solution
	// Source is the name of the excited independent source (unit
	// amplitude, zero phase); all other independent sources are
	// quiesced.
	Source string
}

func (s *ACStamper) nodeIndex(node string) int {
	if node == Ground {
		return -1
	}
	i, ok := s.ix.node[node]
	if !ok {
		return -1
	}
	return i
}

// BranchIndex returns the branch row of a named element.
func (s *ACStamper) BranchIndex(elem string) int { return s.ix.branch[elem] }

// Admittance stamps a two-terminal complex admittance between a and b.
func (s *ACStamper) Admittance(a, b string, y complex128) {
	ia, ib := s.nodeIndex(a), s.nodeIndex(b)
	if ia >= 0 {
		s.a.Add(ia, ia, y)
	}
	if ib >= 0 {
		s.a.Add(ib, ib, y)
	}
	if ia >= 0 && ib >= 0 {
		s.a.Add(ia, ib, -y)
		s.a.Add(ib, ia, -y)
	}
}

// Transadmittance stamps i(outP,outN) = y·v(inP,inN).
func (s *ACStamper) Transadmittance(outP, outN, inP, inN string, y complex128) {
	op, on := s.nodeIndex(outP), s.nodeIndex(outN)
	ip, in := s.nodeIndex(inP), s.nodeIndex(inN)
	add := func(r, c int, v complex128) {
		if r >= 0 && c >= 0 {
			s.a.Add(r, c, v)
		}
	}
	add(op, ip, y)
	add(op, in, -y)
	add(on, ip, -y)
	add(on, in, y)
}

// VoltageBranch stamps a phasor voltage-source branch.
func (s *ACStamper) VoltageBranch(row int, p, n string, v complex128) {
	ip, in := s.nodeIndex(p), s.nodeIndex(n)
	if ip >= 0 {
		s.a.Add(ip, row, 1)
		s.a.Add(row, ip, 1)
	}
	if in >= 0 {
		s.a.Add(in, row, -1)
		s.a.Add(row, in, -1)
	}
	s.rhs[row] += v
}

// CurrentInto stamps a phasor current into node a, out of node b.
func (s *ACStamper) CurrentInto(a, b string, i complex128) {
	if ia := s.nodeIndex(a); ia >= 0 {
		s.rhs[ia] += i
	}
	if ib := s.nodeIndex(b); ib >= 0 {
		s.rhs[ib] -= i
	}
}

// ACElement is implemented by elements that participate in AC
// analysis. Every element type in this package implements it.
type ACElement interface {
	StampAC(s *ACStamper)
}

// StampAC implements ACElement.
func (r *Resistor) StampAC(s *ACStamper) { s.Admittance(r.A, r.B, complex(1/r.Ohms, 0)) }

// StampAC implements ACElement: y = jωC.
func (c *Capacitor) StampAC(s *ACStamper) {
	s.Admittance(c.A, c.B, complex(0, s.Omega*c.Farads))
}

// StampAC implements ACElement: unit phasor when this is the excited
// source, a short (0 V) otherwise.
func (v *VSource) StampAC(s *ACStamper) {
	amp := complex(0, 0)
	if v.Label == s.Source {
		amp = 1
	}
	s.VoltageBranch(s.BranchIndex(v.Label), v.P, v.N, amp)
}

// StampAC implements ACElement: unit phasor when excited, open
// otherwise.
func (i *ISource) StampAC(s *ACStamper) {
	if i.Label == s.Source {
		s.CurrentInto(i.P, i.N, 1)
	}
}

// StampAC implements ACElement: the diode's small-signal conductance
// at the operating point.
func (d *Diode) StampAC(s *ACStamper) {
	n := d.N
	if n == 0 { //lint:allow floatcmp zero N selects the default
		n = 1
	}
	temp := d.Temp
	if temp == 0 { //lint:allow floatcmp zero Temp selects the default
		temp = 300
	}
	vt := n * 8.617333262e-5 * temp
	v := s.OP.Voltage(d.A) - s.OP.Voltage(d.B)
	arg := v / vt
	if arg > 80 {
		arg = 80
	}
	g := d.Is * math.Exp(arg) / vt
	if g < 1e-15 {
		g = 1e-15
	}
	s.Admittance(d.A, d.B, complex(g, 0))
}

// StampAC implements ACElement: gm and gds evaluated at the DC
// operating point (the quasi-static small-signal model; device
// capacitances, when needed, are explicit Capacitor elements).
func (m *CNTFET) StampAC(s *ACStamper) {
	_, gm, gds, err := m.conductances(s.OP.Voltage(m.D), s.OP.Voltage(m.G), s.OP.Voltage(m.S))
	if err != nil {
		return
	}
	if gds < 1e-12 {
		gds = 1e-12
	}
	s.Admittance(m.D, m.S, complex(gds, 0))
	s.Transadmittance(m.D, m.S, m.G, m.S, complex(gm, 0))
}

// StampAC implements ACElement.
func (g *VCCS) StampAC(s *ACStamper) {
	s.Transadmittance(g.P, g.N, g.CP, g.CN, complex(g.Gain, 0))
}

// StampAC implements ACElement.
func (e *VCVS) StampAC(s *ACStamper) {
	row := s.BranchIndex(e.Label)
	ip, in := s.nodeIndex(e.P), s.nodeIndex(e.N)
	if ip >= 0 {
		s.a.Add(ip, row, 1)
		s.a.Add(row, ip, 1)
	}
	if in >= 0 {
		s.a.Add(in, row, -1)
		s.a.Add(row, in, -1)
	}
	if cp := s.nodeIndex(e.CP); cp >= 0 {
		s.a.Add(row, cp, complex(-e.Gain, 0))
	}
	if cn := s.nodeIndex(e.CN); cn >= 0 {
		s.a.Add(row, cn, complex(e.Gain, 0))
	}
}

// ACPoint is the phasor solution at one frequency.
type ACPoint struct {
	// Freq is the analysis frequency in hertz.
	Freq float64
	ix   *indexer
	x    []complex128
}

// Voltage returns the complex node phasor (0 for ground/unknown).
func (p *ACPoint) Voltage(node string) complex128 {
	if node == Ground {
		return 0
	}
	i, ok := p.ix.node[node]
	if !ok {
		return 0
	}
	return p.x[i]
}

// Mag returns |V(node)|.
func (p *ACPoint) Mag(node string) float64 { return cmplx.Abs(p.Voltage(node)) }

// PhaseDeg returns the phase of V(node) in degrees.
func (p *ACPoint) PhaseDeg(node string) float64 {
	return cmplx.Phase(p.Voltage(node)) * 180 / math.Pi
}

// BranchCurrent returns the complex branch current of a voltage-source
// element.
func (p *ACPoint) BranchCurrent(elem string) complex128 {
	i, ok := p.ix.branch[elem]
	if !ok {
		return 0
	}
	return p.x[i]
}

// AC runs a small-signal analysis: it solves the DC operating point,
// linearises every element about it, excites the named independent
// source with a unit phasor and solves the complex MNA system at each
// frequency.
func (c *Circuit) AC(source string, freqs []float64, opt DCOptions) ([]ACPoint, error) {
	if c.Element(source) == nil {
		return nil, fmt.Errorf("circuit: AC source %q not found", source)
	}
	op, err := c.OperatingPoint(opt)
	if err != nil {
		return nil, fmt.Errorf("circuit: AC operating point: %w", err)
	}
	ix := op.ix
	st := &ACStamper{ix: ix, a: linalg.NewCMatrix(ix.n, ix.n), rhs: make([]complex128, ix.n), OP: op, Source: source}
	out := make([]ACPoint, 0, len(freqs))
	for _, f := range freqs {
		if f < 0 {
			return nil, fmt.Errorf("circuit: negative frequency %g", f)
		}
		st.Omega = 2 * math.Pi * f
		st.a.Zero()
		for i := range st.rhs {
			st.rhs[i] = 0
		}
		for _, e := range c.elems {
			ae, ok := e.(ACElement)
			if !ok {
				return nil, fmt.Errorf("circuit: element %q has no AC model", e.Name())
			}
			ae.StampAC(st)
		}
		x, err := linalg.SolveCLU(st.a, st.rhs)
		if telemetry.On() {
			metrics.acSolves.Inc()
		}
		if err != nil {
			return nil, fmt.Errorf("circuit: AC solve at %g Hz: %w", f, err)
		}
		if c.trace.Enabled() {
			c.trace.Emit(telemetry.KindCircuitACPoint, f)
		}
		out = append(out, ACPoint{Freq: f, ix: ix, x: x})
	}
	return out, nil
}

// DecadeFrequencies returns pointsPerDecade·decades+1 logarithmically
// spaced frequencies from fstart to fstop (the SPICE ".ac dec" grid).
func DecadeFrequencies(fstart, fstop float64, pointsPerDecade int) ([]float64, error) {
	if fstart <= 0 || fstop <= fstart {
		return nil, fmt.Errorf("circuit: bad frequency range [%g, %g]", fstart, fstop)
	}
	if pointsPerDecade < 1 {
		pointsPerDecade = 10
	}
	decades := math.Log10(fstop / fstart)
	n := int(math.Ceil(decades * float64(pointsPerDecade)))
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		f := fstart * math.Pow(10, float64(i)/float64(pointsPerDecade))
		if f > fstop {
			f = fstop
		}
		out = append(out, f)
	}
	return out, nil
}
