package circuit

import (
	"errors"
	"fmt"
	"math"

	"cntfet/internal/linalg"
	"cntfet/internal/telemetry"
)

// ErrNoConvergence is returned when Newton iteration fails even with
// gmin stepping.
var ErrNoConvergence = errors.New("circuit: DC analysis did not converge")

// DCOptions tunes the operating-point solver.
type DCOptions struct {
	// MaxIter bounds Newton iterations per gmin step (default 100).
	MaxIter int
	// VTol is the node-voltage convergence tolerance (default 1e-9).
	VTol float64
	// MaxStep clamps the per-iteration voltage update (default 0.5 V),
	// the classic damping that keeps exponential devices in range.
	MaxStep float64
	// GminSteps is the number of decades of gmin stepping tried before
	// giving up (default 8, from 1e-4 down).
	GminSteps int
}

func (o *DCOptions) fill() {
	if o.MaxIter == 0 {
		o.MaxIter = 100
	}
	if o.VTol == 0 { //lint:allow floatcmp zero VTol selects the default
		o.VTol = 1e-9
	}
	if o.MaxStep == 0 { //lint:allow floatcmp zero MaxStep selects the default
		o.MaxStep = 0.5
	}
	if o.GminSteps == 0 {
		o.GminSteps = 8
	}
}

// OperatingPoint solves the DC operating point of the circuit.
func (c *Circuit) OperatingPoint(opt DCOptions) (*Solution, error) {
	opt.fill()
	ix := c.buildIndex()
	if ix.n == 0 {
		return &Solution{ix: ix}, nil
	}
	st := newStamper(ix)
	x := make([]float64, ix.n)

	// Plain Newton first; on failure, walk gmin from large to small,
	// reusing each converged solution as the next start.
	if err := c.newton(st, x, 0, opt); err == nil {
		return &Solution{ix: ix, x: x}, nil
	}
	for i := range x {
		x[i] = 0
	}
	gmin := 1e-4
	for step := 0; step < opt.GminSteps; step++ {
		if telemetry.On() {
			metrics.dcGminSteps.Inc()
		}
		if err := c.newton(st, x, gmin, opt); err != nil {
			return nil, err
		}
		gmin /= 100
	}
	if err := c.newton(st, x, 0, opt); err != nil {
		return nil, err
	}
	return &Solution{ix: ix, x: x}, nil
}

// newton runs damped Newton iteration in place on x. On failure it
// returns a *ConvergenceError carrying the iteration count, the last
// update norm and the worst unknown's name.
func (c *Circuit) newton(st *Stamper, x []float64, gmin float64, opt DCOptions) error {
	on := telemetry.On()
	if on {
		metrics.dcSolves.Inc()
	}
	worst, worstIx := 0.0, 0
	for iter := 0; iter < opt.MaxIter; iter++ {
		st.reset(x)
		st.Gmin = gmin
		for _, e := range c.elems {
			e.Stamp(st)
		}
		xNew, err := linalg.SolveLU(st.a, st.rhs)
		if on {
			metrics.luSolves.Inc()
			metrics.dcNewtonIters.Inc()
		}
		if err != nil {
			return fmt.Errorf("circuit: singular MNA matrix: %w", err)
		}
		// Damp and measure the update.
		worst, worstIx = 0.0, 0
		for i := range x {
			d := xNew[i] - x[i]
			if math.Abs(d) > opt.MaxStep {
				d = math.Copysign(opt.MaxStep, d)
			}
			x[i] += d
			if a := math.Abs(d); a > worst {
				worst, worstIx = a, i
			}
		}
		if worst < opt.VTol {
			if on {
				metrics.newtonIterHist.Observe(float64(iter + 1))
			}
			if c.trace.Enabled() {
				c.trace.Emit(telemetry.KindCircuitDCSolve, st.Time,
					"iters", iter+1, "gmin", gmin, "worst_dv", worst)
			}
			return nil
		}
	}
	if on {
		metrics.convergeFail.Inc()
	}
	cerr := &ConvergenceError{
		Analysis:   "dc",
		Iterations: opt.MaxIter,
		Residual:   worst,
		WorstNode:  st.ix.unknownName(worstIx),
		Gmin:       gmin,
		Time:       st.Time,
	}
	if c.trace.Enabled() {
		c.trace.Emit(telemetry.KindCircuitConvergenceFailure, st.Time,
			"iters", cerr.Iterations, "worst_dv", worst, "gmin", gmin)
	}
	return cerr
}

// SweepPoint is one solution of a DC sweep.
type SweepPoint struct {
	Value    float64
	Solution *Solution
}

// DCSweep steps the waveform value of the named voltage source across
// [from, to] with the given step, solving the operating point at each
// value with continuation (each solution seeds the next).
func (c *Circuit) DCSweep(source string, from, to, step float64, opt DCOptions) ([]SweepPoint, error) {
	opt.fill()
	el := c.Element(source)
	if el == nil {
		return nil, fmt.Errorf("circuit: sweep source %q not found", source)
	}
	vs, ok := el.(*VSource)
	if !ok {
		return nil, fmt.Errorf("circuit: sweep element %q is not a voltage source", source)
	}
	if step == 0 || (to-from)*step < 0 { //lint:allow floatcmp a zero step can never reach the sweep end
		return nil, fmt.Errorf("circuit: bad sweep step %g for range [%g,%g]", step, from, to)
	}
	saved := vs.Wave
	defer func() { vs.Wave = saved }()

	ix := c.buildIndex()
	st := newStamper(ix)
	x := make([]float64, ix.n)
	var out []SweepPoint
	n := int(math.Floor((to-from)/step + 0.5))
	for k := 0; k <= n; k++ {
		v := from + float64(k)*step
		vs.Wave = DC(v)
		if err := c.newton(st, x, 0, opt); err != nil {
			// Retry this point from scratch with gmin stepping.
			sol, err2 := c.OperatingPoint(opt)
			if err2 != nil {
				return nil, fmt.Errorf("circuit: sweep %s=%g: %w", source, v, err)
			}
			copy(x, sol.x)
		}
		if c.trace.Enabled() {
			c.trace.Emit(telemetry.KindCircuitDCSweepPoint, v)
		}
		out = append(out, SweepPoint{Value: v, Solution: (&Solution{ix: ix, x: x}).Clone()})
	}
	return out, nil
}

// solveStamped factors and solves the assembled MNA system.
func solveStamped(st *Stamper) ([]float64, error) {
	x, err := linalg.SolveLU(st.a, st.rhs)
	if err != nil {
		return nil, fmt.Errorf("circuit: singular MNA matrix: %w", err)
	}
	return x, nil
}
