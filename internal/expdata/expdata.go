// Package expdata provides the stand-in for the measured device of the
// paper's section VI (Javey et al., "High performance n-type carbon
// nanotube field-effect transistors with chemically doped contacts",
// Nano Letters 5, 2005: d = 1.6 nm, tox = 50 nm back gate,
// EF = -0.05 eV, T = 300 K).
//
// The original measurement exists only as printed figures, so this
// package synthesises a deterministic equivalent: the ballistic theory
// current for the published geometry, degraded by the non-idealities a
// real doped-contact device has and the paper names as the cause of its
// ~10 % model-vs-experiment discrepancy — contact transmission below
// unity, source/drain series resistance, and a smooth gate-dependent
// mobility-like roll-off. All coefficients are fixed constants; the
// data is reproducible bit-for-bit and independent of any RNG.
//
// See DESIGN.md §4 for the substitution rationale.
package expdata

import (
	"fmt"
	"math"

	"cntfet/internal/fettoy"
)

// Non-ideality coefficients of the synthetic device. They were chosen
// once so that the ballistic theory lands near the paper's reported
// ~7-9 % RMS against the measurement (table V) and then frozen; they
// are exported for documentation, not for tuning.
const (
	// Transmission is the sub-unity contact transmission factor.
	Transmission = 0.92
	// SeriesResistance is the total source+drain metal/contact
	// resistance in ohms. Kept small relative to the device resistance
	// so the theory-vs-experiment error does not grow with gate drive
	// (the paper's table V shows the error *shrinking* slightly as VG
	// rises).
	SeriesResistance = 1.5e3
	// GateRollOff suppresses high gate overdrive quadratically,
	// mimicking the mobility/charge-screening roll-off of a real
	// device (per volt of gate bias).
	GateRollOff = 0.02
)

// Dataset is the synthetic measurement: one curve per gate voltage.
type Dataset struct {
	Device fettoy.Device
	VG     []float64
	VDS    []float64
	// IDS[i][j] is the current at VG[i], VDS[j] in amperes.
	IDS [][]float64
}

// PaperGates returns the gate voltages of figures 10 and 11.
func PaperGates() []float64 { return []float64{0, 0.2, 0.4, 0.6} }

// TableGates returns the gate voltages of table V.
func TableGates() []float64 { return []float64{0.2, 0.4, 0.6} }

// PaperVDS returns the drain-voltage grid of figures 10 and 11
// (0 to 0.4 V).
func PaperVDS(points int) []float64 {
	if points < 2 {
		points = 41
	}
	out := make([]float64, points)
	for i := range out {
		out[i] = 0.4 * float64(i) / float64(points-1)
	}
	return out
}

// Generate synthesises the measurement on the given grids using the
// Javey device geometry.
func Generate(vgs, vds []float64) (*Dataset, error) {
	dev := fettoy.Javey()
	ref, err := fettoy.New(dev)
	if err != nil {
		return nil, err
	}
	ds := &Dataset{
		Device: dev,
		VG:     append([]float64(nil), vgs...),
		VDS:    append([]float64(nil), vds...),
		IDS:    make([][]float64, len(vgs)),
	}
	for i, vg := range vgs {
		ds.IDS[i] = make([]float64, len(vds))
		for j, vd := range vds {
			id, err := measure(ref, vg, vd)
			if err != nil {
				return nil, fmt.Errorf("expdata: VG=%g VDS=%g: %w", vg, vd, err)
			}
			ds.IDS[i][j] = id
		}
	}
	return ds, nil
}

// measure applies the non-idealities to the ballistic current: the
// series resistance eats part of the applied VDS (fixed-point
// iteration, convergent because dI/dV > 0 and I·R << VDS), and the
// result is scaled by the contact transmission and the gate roll-off.
func measure(ref *fettoy.Model, vg, vd float64) (float64, error) {
	scale := Transmission / (1 + GateRollOff*vg*vg)
	i := 0.0
	for iter := 0; iter < 25; iter++ {
		vEff := vd - i*SeriesResistance
		if vEff < 0 {
			vEff = 0
		}
		raw, err := ref.IDS(fettoy.Bias{VG: vg, VD: vEff})
		if err != nil {
			return 0, err
		}
		next := scale * raw
		if math.Abs(next-i) < 1e-12*(1+math.Abs(next)) {
			return next, nil
		}
		// Damp the update; the loop gain i·R/VDS is well below one for
		// this device but damping costs nothing.
		i = 0.5*i + 0.5*next
	}
	return i, nil
}

// Curve returns the measurement at one gate voltage, or an error if vg
// is not on the dataset grid.
func (d *Dataset) Curve(vg float64) ([]float64, error) {
	for i, g := range d.VG {
		if g == vg { //lint:allow floatcmp grid lookup wants the exact stored value
			return d.IDS[i], nil
		}
	}
	return nil, fmt.Errorf("expdata: VG=%g not in dataset", vg)
}
