package expdata

import (
	"math"
	"testing"

	"cntfet/internal/fettoy"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(TableGates(), PaperVDS(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(TableGates(), PaperVDS(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.IDS {
		for j := range a.IDS[i] {
			if a.IDS[i][j] != b.IDS[i][j] {
				t.Fatalf("dataset not deterministic at (%d,%d)", i, j)
			}
		}
	}
}

func TestMeasurementBelowBallistic(t *testing.T) {
	// Every non-ideality removes current, so the synthetic measurement
	// must sit below the pure ballistic theory at matching bias.
	ds, err := Generate([]float64{0.4}, PaperVDS(9))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fettoy.New(fettoy.Javey())
	if err != nil {
		t.Fatal(err)
	}
	for j, vd := range ds.VDS {
		ballistic, err := ref.IDS(fettoy.Bias{VG: 0.4, VD: vd})
		if err != nil {
			t.Fatal(err)
		}
		if ds.IDS[0][j] > ballistic+1e-18 {
			t.Fatalf("measurement above theory at VDS=%g: %g > %g", vd, ds.IDS[0][j], ballistic)
		}
	}
}

func TestMeasurementWithinTenPercentBand(t *testing.T) {
	// The whole point of the coefficients: ballistic theory tracks the
	// synthetic measurement with order-10% RMS (table V band, <= ~15%).
	ds, err := Generate([]float64{0.4}, PaperVDS(21))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := fettoy.New(fettoy.Javey())
	if err != nil {
		t.Fatal(err)
	}
	var sum, mean float64
	for j, vd := range ds.VDS {
		th, err := ref.IDS(fettoy.Bias{VG: 0.4, VD: vd})
		if err != nil {
			t.Fatal(err)
		}
		d := th - ds.IDS[0][j]
		sum += d * d
		mean += ds.IDS[0][j]
	}
	n := float64(len(ds.VDS))
	rms := 100 * math.Sqrt(sum/n) / (mean / n)
	if rms < 2 || rms > 18 {
		t.Fatalf("theory-vs-experiment RMS = %.1f%%, want order 10%%", rms)
	}
}

func TestCurveLookup(t *testing.T) {
	ds, err := Generate(PaperGates(), PaperVDS(5))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ds.Curve(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(c) != 5 {
		t.Fatalf("curve length %d", len(c))
	}
	if _, err := ds.Curve(0.123); err == nil {
		t.Fatal("missing gate accepted")
	}
}

func TestCurrentsMonotoneInVDS(t *testing.T) {
	ds, err := Generate([]float64{0.6}, PaperVDS(21))
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < len(ds.VDS); j++ {
		if ds.IDS[0][j] < ds.IDS[0][j-1]-1e-15 {
			t.Fatalf("measurement not monotone at %g", ds.VDS[j])
		}
	}
}

func TestZeroGateCurveIsSmall(t *testing.T) {
	// VG = 0 with EF = -0.05 eV: near-threshold, so the current should
	// be well below the VG = 0.6 curve but still positive at VDS > 0.
	ds, err := Generate([]float64{0, 0.6}, PaperVDS(5))
	if err != nil {
		t.Fatal(err)
	}
	if !(ds.IDS[0][4] < ds.IDS[1][4]/3) {
		t.Fatalf("VG=0 curve %g not well below VG=0.6 curve %g", ds.IDS[0][4], ds.IDS[1][4])
	}
	if ds.IDS[0][4] <= 0 {
		t.Fatal("VG=0 current should be positive at VDS=0.4")
	}
}

func TestPaperGridHelpers(t *testing.T) {
	if g := PaperVDS(0); len(g) != 41 || g[40] != 0.4 {
		t.Fatalf("default grid %v", g[len(g)-1])
	}
	if len(PaperGates()) != 4 || len(TableGates()) != 3 {
		t.Fatal("paper gate lists")
	}
}
