// Package variation runs process-variability studies over CNT
// transistor populations. Diameter dispersion (chirality control) and
// doping/Fermi-level spread are the canonical CNFET manufacturing
// problems, and sweeping them takes thousands of device evaluations —
// exactly the workload the paper's >1000x evaluation speedup exists
// for. Fermi-level spread is handled without any refitting through
// core.Model.WithEF (the fitted charge curve is EF-invariant in the
// paper's u = VSC − EF/q variable); diameter spread refits the charge
// curve per sample with a reduced sampling budget.
package variation

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cntfet/internal/core"
	"cntfet/internal/fettoy"
)

// Spread describes the per-device parameter dispersion (one standard
// deviation each; zero disables that axis).
type Spread struct {
	// DiameterRel is the relative sigma of the tube diameter
	// (e.g. 0.04 for 4 % chirality dispersion).
	DiameterRel float64
	// EF is the absolute sigma of the Fermi level in eV (doping
	// fluctuation).
	EF float64
}

// Result summarises a Monte Carlo run.
type Result struct {
	// Samples holds the metric of every device, in generation order.
	Samples []float64
	// Mean and Std are the sample statistics.
	Mean, Std float64
	// P5, P50, P95 are percentiles of the sorted samples.
	P5, P50, P95 float64
}

func summarize(samples []float64) Result {
	r := Result{Samples: samples}
	n := float64(len(samples))
	for _, s := range samples {
		r.Mean += s
	}
	r.Mean /= n
	for _, s := range samples {
		d := s - r.Mean
		r.Std += d * d
	}
	if len(samples) > 1 {
		r.Std = math.Sqrt(r.Std / (n - 1))
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	r.P5, r.P50, r.P95 = pick(0.05), pick(0.50), pick(0.95)
	return r
}

// Partial is a running statistic of an in-flight Monte Carlo study,
// emitted by MonteCarloIDSTo so long runs can report convergence live
// instead of going silent until the last sample.
type Partial struct {
	// Done is the number of samples folded in so far; Total the
	// requested study size.
	Done, Total int
	// Mean and Std are the running sample statistics over the first
	// Done samples (Std uses the n-1 denominator, matching Result;
	// zero while Done < 2).
	Mean, Std float64
}

// MonteCarloIDS draws n device variants around the base device and
// returns the distribution of drain current at the given bias,
// evaluated with the paper's Model 2. The run is deterministic in the
// seed. Cancellation is honoured between samples: a canceled context
// aborts the study with an error wrapping the context's cause.
// It is the non-emitting wrapper over MonteCarloIDSTo.
func MonteCarloIDS(ctx context.Context, base fettoy.Device, spread Spread, bias fettoy.Bias, n int, seed int64) (Result, error) {
	return MonteCarloIDSTo(ctx, base, spread, bias, n, seed, 0, nil)
}

// MonteCarloIDSTo is MonteCarloIDS with streamed partial statistics:
// after every `every` samples (and always after the last) it hands
// the emit callback a Partial with the running mean and standard
// deviation, maintained by Welford's algorithm so no second pass over
// the samples is needed. every <= 0 or a nil emit disables emission,
// which is the buffered MonteCarloIDS path. A non-nil error from emit
// aborts the study and is returned unchanged, so callers can classify
// a failing sink — typically a disconnected client — distinctly from
// a failing solve. The returned Result is identical to the buffered
// path's (summarize runs over the full sample set at the end; the
// draws do not depend on the emission cadence).
func MonteCarloIDSTo(ctx context.Context, base fettoy.Device, spread Spread, bias fettoy.Bias, n int, seed int64, every int, emit func(Partial) error) (Result, error) {
	if n < 1 {
		return Result{}, fmt.Errorf("variation: need at least one sample")
	}
	if spread.DiameterRel < 0 || spread.EF < 0 {
		return Result{}, fmt.Errorf("variation: negative sigma")
	}
	ref, err := fettoy.New(base)
	if err != nil {
		return Result{}, err
	}
	// One nominal fit; EF-only samples reuse it via WithEF.
	nominal, err := core.Fit(ref, core.Model2Spec(), core.FitOptions{})
	if err != nil {
		return Result{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	samples := make([]float64, 0, n)
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	// Welford running moments for the streamed partials.
	var mean, m2 float64
	for i := 0; i < n; i++ {
		select {
		case <-done:
			return Result{}, fmt.Errorf("variation: canceled at sample %d: %w", i, context.Cause(ctx))
		default:
		}
		ef := base.EF + spread.EF*rng.NormFloat64()
		dRel := spread.DiameterRel * rng.NormFloat64()

		var m *core.Model
		if spread.DiameterRel == 0 { //lint:allow floatcmp zero spread disables diameter sampling
			m, err = nominal.WithEF(ef)
			if err != nil {
				return Result{}, fmt.Errorf("variation: sample %d: %w", i, err)
			}
		} else {
			dev := base
			dev.Diameter = base.Diameter * (1 + dRel)
			dev.EF = ef
			if dev.Diameter <= 0 {
				return Result{}, fmt.Errorf("variation: sample %d: diameter collapsed", i)
			}
			refS, err := fettoy.New(dev)
			if err != nil {
				return Result{}, fmt.Errorf("variation: sample %d: %w", i, err)
			}
			// Reduced sampling budget: the per-sample fit is the MC
			// bottleneck, and 80 points keep it at percent accuracy.
			m, err = core.Fit(refS, core.Model2Spec(), core.FitOptions{Samples: 80})
			if err != nil {
				return Result{}, fmt.Errorf("variation: sample %d: %w", i, err)
			}
		}
		ids, err := m.IDS(bias)
		if err != nil {
			return Result{}, fmt.Errorf("variation: sample %d: %w", i, err)
		}
		samples = append(samples, ids)
		if emit != nil && every > 0 {
			d := ids - mean
			mean += d / float64(i+1)
			m2 += d * (ids - mean)
			if (i+1)%every == 0 || i+1 == n {
				p := Partial{Done: i + 1, Total: n, Mean: mean}
				if i > 0 {
					p.Std = math.Sqrt(m2 / float64(i))
				}
				if err := emit(p); err != nil {
					return Result{}, err
				}
			}
		}
	}
	return summarize(samples), nil
}

// Sensitivity estimates d(IDS)/d(EF) around the base device by central
// differences through the refit-free WithEF path, in A/eV. Useful for
// cross-checking the Monte Carlo spread: for small sigma,
// std(IDS) ≈ |sensitivity|·sigma.
func Sensitivity(base fettoy.Device, bias fettoy.Bias, dEF float64) (float64, error) {
	if dEF <= 0 {
		return 0, fmt.Errorf("variation: step must be positive")
	}
	ref, err := fettoy.New(base)
	if err != nil {
		return 0, err
	}
	m, err := core.Fit(ref, core.Model2Spec(), core.FitOptions{})
	if err != nil {
		return 0, err
	}
	up, err := m.WithEF(base.EF + dEF)
	if err != nil {
		return 0, err
	}
	dn, err := m.WithEF(base.EF - dEF)
	if err != nil {
		return 0, err
	}
	iu, err := up.IDS(bias)
	if err != nil {
		return 0, err
	}
	id, err := dn.IDS(bias)
	if err != nil {
		return 0, err
	}
	return (iu - id) / (2 * dEF), nil
}
