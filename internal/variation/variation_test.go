package variation

import (
	"context"
	"errors"
	"math"
	"testing"

	"cntfet/internal/fettoy"
)

var bias = fettoy.Bias{VG: 0.5, VD: 0.4}

func TestMonteCarloDeterministic(t *testing.T) {
	a, err := MonteCarloIDS(context.Background(), fettoy.Default(), Spread{EF: 0.02}, bias, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarloIDS(context.Background(), fettoy.Default(), Spread{EF: 0.02}, bias, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs across runs with the same seed", i)
		}
	}
	c, err := MonteCarloIDS(context.Background(), fettoy.Default(), Spread{EF: 0.02}, bias, 50, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.Samples[0] == a.Samples[0] {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestMonteCarloZeroSpreadIsConstant(t *testing.T) {
	r, err := MonteCarloIDS(context.Background(), fettoy.Default(), Spread{}, bias, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Identical samples: any spread is mean-summation rounding.
	if r.Std > 1e-12*r.Mean {
		t.Fatalf("std = %g with zero spread (mean %g)", r.Std, r.Mean)
	}
	if r.Mean <= 0 {
		t.Fatalf("mean = %g", r.Mean)
	}
}

func TestMonteCarloSpreadMatchesSensitivity(t *testing.T) {
	sigma := 0.01
	r, err := MonteCarloIDS(context.Background(), fettoy.Default(), Spread{EF: sigma}, bias, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	sens, err := Sensitivity(fettoy.Default(), bias, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Abs(sens) * sigma
	if r.Std < want/2 || r.Std > want*2 {
		t.Fatalf("MC std %g vs linearised %g", r.Std, want)
	}
	// Ordering of the percentiles.
	if !(r.P5 <= r.P50 && r.P50 <= r.P95) {
		t.Fatalf("percentiles out of order: %g %g %g", r.P5, r.P50, r.P95)
	}
}

func TestMonteCarloDiameterSpread(t *testing.T) {
	// Small run (per-sample refits are the cost); diameter dispersion
	// must widen the distribution.
	r, err := MonteCarloIDS(context.Background(), fettoy.Default(), Spread{DiameterRel: 0.05}, bias, 12, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Std <= 0 {
		t.Fatal("diameter spread produced no current spread")
	}
	if r.Std/r.Mean > 0.5 {
		t.Fatalf("implausibly wide spread: %g of mean", r.Std/r.Mean)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarloIDS(context.Background(), fettoy.Default(), Spread{}, bias, 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := MonteCarloIDS(context.Background(), fettoy.Default(), Spread{EF: -1}, bias, 5, 1); err == nil {
		t.Fatal("negative sigma accepted")
	}
	bad := fettoy.Default()
	bad.Diameter = -1
	if _, err := MonteCarloIDS(context.Background(), bad, Spread{}, bias, 5, 1); err == nil {
		t.Fatal("invalid base device accepted")
	}
	if _, err := Sensitivity(fettoy.Default(), bias, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestSensitivitySign(t *testing.T) {
	// Raising EF (toward the band) turns the device on harder.
	sens, err := Sensitivity(fettoy.Default(), bias, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if sens <= 0 {
		t.Fatalf("dIDS/dEF = %g, want positive", sens)
	}
}

// TestMonteCarloStreamedPartials checks the emitting core: partials
// arrive at the requested cadence plus a final one, the draws are
// unaffected by emission, and the last partial agrees with the
// summary statistics.
func TestMonteCarloStreamedPartials(t *testing.T) {
	want, err := MonteCarloIDS(context.Background(), fettoy.Default(), Spread{EF: 0.02}, bias, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	var parts []Partial
	got, err := MonteCarloIDSTo(context.Background(), fettoy.Default(), Spread{EF: 0.02}, bias, 25, 7, 10, func(p Partial) error {
		parts = append(parts, p)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Samples {
		if want.Samples[i] != got.Samples[i] { //lint:allow floatcmp emission must not perturb the draws
			t.Fatalf("sample %d differs between buffered and emitting runs", i)
		}
	}
	wantDone := []int{10, 20, 25}
	if len(parts) != len(wantDone) {
		t.Fatalf("got %d partials, want %d (%+v)", len(parts), len(wantDone), parts)
	}
	for i, p := range parts {
		if p.Done != wantDone[i] || p.Total != 25 {
			t.Fatalf("partial %d = %+v, want Done=%d Total=25", i, p, wantDone[i])
		}
	}
	last := parts[len(parts)-1]
	if math.Abs(last.Mean-want.Mean) > 1e-12*math.Abs(want.Mean) {
		t.Fatalf("final partial mean %g vs summary %g", last.Mean, want.Mean)
	}
	if math.Abs(last.Std-want.Std) > 1e-9*math.Abs(want.Mean) {
		t.Fatalf("final partial std %g vs summary %g", last.Std, want.Std)
	}
}

// TestMonteCarloEmitErrorAborts checks that a failing sink stops the
// study and surfaces the sink's error unchanged.
func TestMonteCarloEmitErrorAborts(t *testing.T) {
	sentinel := errors.New("sink gone")
	calls := 0
	_, err := MonteCarloIDSTo(context.Background(), fettoy.Default(), Spread{EF: 0.02}, bias, 50, 7, 5, func(p Partial) error {
		calls++
		if p.Done >= 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("error = %v, want sink sentinel", err)
	}
	if calls != 2 {
		t.Fatalf("%d partials delivered, want 2", calls)
	}
}
