package linalg

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorisation of an m-by-n matrix with
// m >= n: A = Q*R with Q orthogonal (m-by-m, stored implicitly as
// Householder reflectors) and R upper triangular (n-by-n).
type QR struct {
	qr    *Matrix   // reflectors below the diagonal, R on and above
	rdiag []float64 // diagonal of R
}

// FactorQR computes the QR factorisation of a (m >= n required). The
// input is not modified.
func FactorQR(a *Matrix) (*QR, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("linalg: QR needs rows >= cols, got %dx%d", m, n)
	}
	f := &QR{qr: a.Clone(), rdiag: make([]float64, n)}
	qr := f.qr
	for k := 0; k < n; k++ {
		// Norm of the k-th column below (and including) the diagonal.
		col := make([]float64, m-k)
		for i := k; i < m; i++ {
			col[i-k] = qr.At(i, k)
		}
		nrm := Norm2(col)
		if nrm == 0 { //lint:allow floatcmp an exactly zero column norm is singular
			return nil, ErrSingular
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Add(k, k, 1)
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			s := 0.0
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Add(i, j, s*qr.At(i, k))
			}
		}
		f.rdiag[k] = -nrm
	}
	return f, nil
}

// Solve returns the least-squares solution x minimising ||A*x - b||2.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), m)
	}
	y := make([]float64, m)
	copy(y, b)
	// Apply Q^T to b.
	for k := 0; k < n; k++ {
		s := 0.0
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back-substitute R*x = y[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		if f.rdiag[i] == 0 { //lint:allow floatcmp an exactly zero R diagonal is singular
			return nil, ErrSingular
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min ||A*x - b||2 by QR in one call and also
// returns the residual 2-norm.
func LeastSquares(a *Matrix, b []float64) (x []float64, resid float64, err error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, 0, err
	}
	x, err = f.Solve(b)
	if err != nil {
		return nil, 0, err
	}
	r := a.MulVec(x)
	for i := range r {
		r[i] -= b[i]
	}
	return x, Norm2(r), nil
}

// RDiagMin returns the smallest |R_ii|, a cheap rank/conditioning probe
// for least-squares design matrices.
func (f *QR) RDiagMin() float64 {
	mn := math.Inf(1)
	for _, d := range f.rdiag {
		if a := math.Abs(d); a < mn {
			mn = a
		}
	}
	return mn
}
