package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorisation meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorisation with partial pivoting: P*A = L*U.
// The factors are stored compactly in a single matrix (unit lower
// triangle implicit).
type LU struct {
	lu   *Matrix
	piv  []int // row i of the factor came from row piv[i] of A
	sign int   // +1/-1, parity of the permutation, for Det
}

// FactorLU computes the LU factorisation of a square matrix a using
// partial (row) pivoting. The input matrix is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows() != a.Cols() {
		return nil, fmt.Errorf("linalg: LU needs a square matrix, got %dx%d", a.Rows(), a.Cols())
	}
	n := a.Rows()
	f := &LU{lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p, pmax := k, math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.At(i, k)); a > pmax {
				p, pmax = i, a
			}
		}
		if pmax == 0 { //lint:allow floatcmp an exactly zero pivot column is singular
			return nil, ErrSingular
		}
		if p != k {
			swapRows(lu, p, k)
			f.piv[p], f.piv[k] = f.piv[k], f.piv[p]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 { //lint:allow floatcmp exact zeros need no elimination
				continue
			}
			for j := k + 1; j < n; j++ {
				lu.Add(i, j, -m*lu.At(k, j))
			}
		}
	}
	return f, nil
}

func swapRows(m *Matrix, a, b int) {
	for j := 0; j < m.Cols(); j++ {
		va, vb := m.At(a, j), m.At(b, j)
		m.Set(a, j, vb)
		m.Set(b, j, va)
	}
}

// Solve solves A*x = b for one right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.Rows()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.pivSource(i)]
	}
	// Forward substitution (unit lower).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Backward substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.lu.At(i, j) * x[j]
		}
		d := f.lu.At(i, i)
		if d == 0 { //lint:allow floatcmp an exactly zero diagonal is singular
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

func (f *LU) pivSource(i int) int { return f.piv[i] }

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows(); i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLU factors a and solves a*x = b in one call. Use FactorLU
// directly when solving for many right-hand sides.
func SolveLU(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// CondEstimate returns a cheap lower-bound estimate of the infinity-norm
// condition number of a, using ||A||_inf multiplied by the norm of the
// solution of A x = e for a few probing vectors. It is only used to warn
// about badly scaled fitting problems, not for rigorous analysis.
func CondEstimate(a *Matrix) float64 {
	f, err := FactorLU(a)
	if err != nil {
		return math.Inf(1)
	}
	n := a.Rows()
	normA := 0.0
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += math.Abs(a.At(i, j))
		}
		if s > normA {
			normA = s
		}
	}
	best := 0.0
	probe := make([]float64, n)
	for trial := 0; trial < 3; trial++ {
		for i := range probe {
			switch trial {
			case 0:
				probe[i] = 1
			case 1:
				if i%2 == 0 {
					probe[i] = 1
				} else {
					probe[i] = -1
				}
			default:
				probe[i] = 1 / float64(i+1)
			}
		}
		x, err := f.Solve(probe)
		if err != nil {
			return math.Inf(1)
		}
		if nx := NormInf(x) / NormInf(probe); nx > best {
			best = nx
		}
	}
	return normA * best
}
