// Package linalg provides the dense linear algebra needed by the rest of
// the library: LU factorisation with partial pivoting (circuit MNA
// solves), Householder QR (least-squares polynomial fitting) and the
// vector/matrix plumbing they share.
//
// The package is deliberately small — it implements exactly the
// operations the device models and the circuit simulator require, with
// conventional dense storage (row-major) and no external dependencies.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from row slices; all rows must share a length.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic("linalg: ragged rows")
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add increments the element at row i, column j by v. MNA stamping is a
// long sequence of such accumulations, so it gets its own method.
func (m *Matrix) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Zero resets every element to zero, keeping the allocation.
func (m *Matrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product m*b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 { //lint:allow floatcmp exact zeros contribute nothing to the product
				continue
			}
			row := b.data[k*b.cols : (k+1)*b.cols]
			outRow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range row {
				outRow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		s := 0.0
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MaxAbs returns the largest absolute element value (the max norm).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "% .6g\t", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v, guarding against overflow for
// large components.
func Norm2(v []float64) float64 {
	scale, ssq := 0.0, 1.0
	for _, x := range v {
		if x == 0 { //lint:allow floatcmp exact zeros contribute nothing to the norm
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	mx := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}
