package linalg

import (
	"fmt"
	"math/cmplx"
)

// CMatrix is a dense row-major complex matrix, the workhorse of AC
// (small-signal phasor) analysis.
type CMatrix struct {
	rows, cols int
	data       []complex128
}

// NewCMatrix returns a zero complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &CMatrix{rows: rows, cols: cols, data: make([]complex128, rows*cols)}
}

// Rows returns the number of rows.
func (m *CMatrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CMatrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *CMatrix) At(i, j int) complex128 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *CMatrix) Set(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add accumulates into the element at (i, j).
func (m *CMatrix) Add(i, j int, v complex128) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *CMatrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Zero clears the matrix in place.
func (m *CMatrix) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// MulVec returns m*x.
func (m *CMatrix) MulVec(x []complex128) []complex128 {
	if m.cols != len(x) {
		panic("linalg: MulVec dimension mismatch")
	}
	out := make([]complex128, m.rows)
	for i := 0; i < m.rows; i++ {
		var s complex128
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// SolveCLU solves the complex system a*x = b by LU factorisation with
// partial pivoting (pivot by modulus). a is not modified.
func SolveCLU(a *CMatrix, b []complex128) ([]complex128, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("linalg: complex LU needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	n := a.rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	lu := make([]complex128, len(a.data))
	copy(lu, a.data)
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	at := func(i, j int) complex128 { return lu[i*n+j] }
	set := func(i, j int, v complex128) { lu[i*n+j] = v }

	for k := 0; k < n; k++ {
		p, pmax := k, cmplx.Abs(at(k, k))
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(at(i, k)); a > pmax {
				p, pmax = i, a
			}
		}
		if pmax == 0 { //lint:allow floatcmp an exactly zero pivot column is singular
			return nil, ErrSingular
		}
		if p != k {
			for j := 0; j < n; j++ {
				lu[p*n+j], lu[k*n+j] = lu[k*n+j], lu[p*n+j]
			}
			piv[p], piv[k] = piv[k], piv[p]
		}
		pivot := at(k, k)
		for i := k + 1; i < n; i++ {
			m := at(i, k) / pivot
			set(i, k, m)
			if m == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				set(i, j, at(i, j)-m*at(k, j))
			}
		}
	}
	// Permute, forward- and back-substitute.
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[piv[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= at(i, j) * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= at(i, j) * x[j]
		}
		d := at(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
