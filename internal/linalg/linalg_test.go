package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, -4)
	m.Add(1, 2, 1)
	if m.At(0, 0) != 1 || m.At(1, 2) != -3 {
		t.Fatal("Set/Add/At broken")
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatal("shape broken")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases data")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero did not clear")
	}
}

func TestMatrixIndexPanics(t *testing.T) {
	m := NewMatrix(2, 2)
	for _, fn := range []func(){
		func() { m.At(2, 0) },
		func() { m.At(0, -1) },
		func() { m.Set(-1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected out-of-range panic")
				}
			}()
			fn()
		}()
	}
}

func TestTransposeAndMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	at := a.T()
	if at.Rows() != 2 || at.Cols() != 3 || at.At(0, 2) != 5 {
		t.Fatal("transpose broken")
	}
	p := at.Mul(a) // 2x2 = A^T A
	want := FromRows([][]float64{{35, 44}, {44, 56}})
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if p.At(i, j) != want.At(i, j) {
				t.Fatalf("Mul[%d][%d] = %g, want %g", i, j, p.At(i, j), want.At(i, j))
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{2, 0, -1}, {1, 3, 2}})
	got := a.MulVec([]float64{1, 2, 3})
	if got[0] != -1 || got[1] != 13 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestIdentityMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	if p := Identity(2).Mul(a); p.At(0, 1) != 2 || p.At(1, 0) != 3 {
		t.Fatal("I*A != A")
	}
}

func TestLUSolveKnownSystem(t *testing.T) {
	a := FromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveLU(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEq(x[i], want[i], 1e-12) {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestLUDeterminant(t *testing.T) {
	a := FromRows([][]float64{{4, 3}, {6, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -6, 1e-12) {
		t.Fatalf("det = %g, want -6", f.Det())
	}
}

func TestLUSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := FactorLU(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected shape error")
	}
}

func TestLUNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	x, err := SolveLU(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 7, 1e-14) || !almostEq(x[1], 3, 1e-14) {
		t.Fatalf("x = %v", x)
	}
}

// Property: for random well-conditioned systems, LU solve reproduces b.
func TestLUSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Add(i, i, float64(n)) // diagonal dominance keeps it nonsingular
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLU(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := a.MulVec(x)
		for i := range r {
			r[i] -= b[i]
		}
		if NormInf(r) > 1e-10 {
			t.Fatalf("trial %d: residual %g", trial, NormInf(r))
		}
	}
}

func TestQRLeastSquaresExactSystem(t *testing.T) {
	// Square nonsingular: least squares must equal the exact solution.
	a := FromRows([][]float64{{3, 1}, {1, 2}})
	x, resid, err := LeastSquares(a, []float64{9, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
	if resid > 1e-12 {
		t.Fatalf("residual %g on consistent system", resid)
	}
}

func TestQROverdeterminedLine(t *testing.T) {
	// Fit y = 1 + 2x to noiseless data; QR must recover it exactly.
	xs := []float64{-2, -1, 0, 1, 2, 3}
	a := NewMatrix(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 1 + 2*x
	}
	c, resid, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(c[0], 1, 1e-12) || !almostEq(c[1], 2, 1e-12) || resid > 1e-12 {
		t.Fatalf("c = %v resid = %g", c, resid)
	}
}

func TestQRResidualOrthogonality(t *testing.T) {
	// For inconsistent systems the residual must be orthogonal to the
	// column space: A^T (Ax - b) = 0.
	rng := rand.New(rand.NewSource(7))
	a := NewMatrix(10, 3)
	b := make([]float64, 10)
	for i := 0; i < 10; i++ {
		for j := 0; j < 3; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = rng.NormFloat64()
	}
	x, _, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x)
	for i := range r {
		r[i] -= b[i]
	}
	atr := a.T().MulVec(r)
	if NormInf(atr) > 1e-10 {
		t.Fatalf("normal equations violated: %v", atr)
	}
}

func TestQRUnderdeterminedRejected(t *testing.T) {
	if _, err := FactorQR(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for m < n")
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	f, err := FactorQR(a)
	if err != nil {
		// acceptable: detected at factor time
		return
	}
	if f.RDiagMin() > 1e-12 {
		t.Fatalf("rank deficiency not visible in rdiag: %g", f.RDiagMin())
	}
}

func TestVectorHelpers(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot broken")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-14) {
		t.Fatal("Norm2 broken")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Fatal("NormInf broken")
	}
	y := []float64{1, 1}
	AXPY(2, []float64{1, -1}, y)
	if y[0] != 3 || y[1] != -1 {
		t.Fatal("AXPY broken")
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	big := math.MaxFloat64 / 2
	n := Norm2([]float64{big, big})
	if math.IsInf(n, 0) || math.IsNaN(n) {
		t.Fatalf("Norm2 overflowed: %g", n)
	}
	if !almostEq(n/big, math.Sqrt2, 1e-12) {
		t.Fatalf("Norm2 wrong: %g", n)
	}
}

func TestCondEstimateIdentityIsSmall(t *testing.T) {
	if c := CondEstimate(Identity(5)); c < 1 || c > 10 {
		t.Fatalf("cond(I) estimate = %g", c)
	}
}

func TestCondEstimateSingularIsInf(t *testing.T) {
	a := FromRows([][]float64{{1, 1}, {1, 1}})
	if c := CondEstimate(a); !math.IsInf(c, 1) {
		t.Fatalf("cond(singular) = %g, want +Inf", c)
	}
}

// Property: Dot is symmetric and bilinear in its first argument.
func TestDotProperties(t *testing.T) {
	f := func(raw []float64, k float64) bool {
		if len(raw) < 2 || len(raw)%2 != 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.Abs(v) > 1e100 {
				return true
			}
		}
		if math.IsNaN(k) || math.Abs(k) > 1e100 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:]
		if Dot(a, b) != Dot(b, a) {
			return false
		}
		ka := make([]float64, n)
		for i := range a {
			ka[i] = k * a[i]
		}
		return almostEq(Dot(ka, b), k*Dot(a, b), 1e-6*(1+math.Abs(k*Dot(a, b))))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComplexMatrixBasics(t *testing.T) {
	m := NewCMatrix(2, 2)
	m.Set(0, 0, 1+2i)
	m.Add(0, 0, 1)
	if m.At(0, 0) != 2+2i {
		t.Fatal("Set/Add/At broken")
	}
	if m.Rows() != 2 || m.Cols() != 2 {
		t.Fatal("shape")
	}
	m.Zero()
	if m.At(0, 0) != 0 {
		t.Fatal("Zero")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(5, 5)
}

func TestSolveCLUKnownSystem(t *testing.T) {
	// (1+i)x + 2y = 3+i ; 4x + (1-i)y = 5: solve and verify residual.
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1+1i)
	a.Set(0, 1, 2)
	a.Set(1, 0, 4)
	a.Set(1, 1, 1-1i)
	b := []complex128{3 + 1i, 5}
	x, err := SolveCLU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x)
	for i := range r {
		if cmplx.Abs(r[i]-b[i]) > 1e-12 {
			t.Fatalf("residual %v", r[i]-b[i])
		}
	}
}

func TestSolveCLUNeedsPivot(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 1, 1i)
	a.Set(1, 0, 2)
	x, err := SolveCLU(a, []complex128{3i, 4})
	if err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-2) > 1e-14 || cmplx.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveCLUErrors(t *testing.T) {
	if _, err := SolveCLU(NewCMatrix(2, 3), make([]complex128, 2)); err == nil {
		t.Fatal("non-square accepted")
	}
	if _, err := SolveCLU(NewCMatrix(2, 2), make([]complex128, 1)); err == nil {
		t.Fatal("bad rhs accepted")
	}
	sing := NewCMatrix(2, 2)
	sing.Set(0, 0, 1)
	sing.Set(0, 1, 1)
	sing.Set(1, 0, 1)
	sing.Set(1, 1, 1)
	if _, err := SolveCLU(sing, make([]complex128, 2)); err == nil {
		t.Fatal("singular accepted")
	}
}

func TestSolveCLURandomResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		a := NewCMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, complex(rng.NormFloat64(), rng.NormFloat64()))
			}
			a.Add(i, i, complex(float64(2*n), 0))
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		x, err := SolveCLU(a, b)
		if err != nil {
			t.Fatal(err)
		}
		r := a.MulVec(x)
		for i := range r {
			if cmplx.Abs(r[i]-b[i]) > 1e-10 {
				t.Fatalf("trial %d: residual %g", trial, cmplx.Abs(r[i]-b[i]))
			}
		}
	}
}
