package poly

import (
	"math"
	"math/rand"
	"testing"
)

func TestAddPiecewiseDisjointBreaks(t *testing.T) {
	a, _ := NewPiecewise([]float64{0}, []Poly{New(1), New(2)})
	b, _ := NewPiecewise([]float64{1}, []Poly{New(10), New(20)})
	s := AddPiecewise(a, b)
	if len(s.Breaks) != 2 {
		t.Fatalf("breaks = %v", s.Breaks)
	}
	cases := []struct{ x, want float64 }{
		{-5, 11}, {0, 11}, {0.5, 12}, {1, 12}, {2, 22},
	}
	for _, c := range cases {
		if got := s.At(c.x); got != c.want {
			t.Errorf("sum(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestAddPiecewiseCoincidentBreaks(t *testing.T) {
	a, _ := NewPiecewise([]float64{0.5}, []Poly{New(0, 1), {}})
	b, _ := NewPiecewise([]float64{0.5}, []Poly{New(1), New(-1)})
	s := AddPiecewise(a, b)
	if len(s.Breaks) != 1 {
		t.Fatalf("duplicate break not merged: %v", s.Breaks)
	}
	if got := s.At(0.25); math.Abs(got-1.25) > 1e-15 {
		t.Fatalf("sum(0.25) = %g", got)
	}
	if got := s.At(2); got != -1 {
		t.Fatalf("sum(2) = %g", got)
	}
}

func TestAddPiecewiseNoBreaks(t *testing.T) {
	a := Piecewise{Pieces: []Poly{New(2, 1)}}
	b := Piecewise{Pieces: []Poly{New(-1)}}
	s := AddPiecewise(a, b)
	if len(s.Breaks) != 0 || s.At(3) != 4 {
		t.Fatalf("sum = %v at 3: %g", s.Breaks, s.At(3))
	}
}

// Property: AddPiecewise agrees with pointwise addition everywhere,
// including at and around breakpoints, for random shifted pairs.
func TestAddPiecewiseAgreesPointwiseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	base, err := NewPiecewise([]float64{-0.3, 0.1},
		[]Poly{New(0.5, 2), New(0.1, -1, 3), {}})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		h := rng.NormFloat64() * 0.4
		other := base.Shift(h)
		s := AddPiecewise(base, other)
		for _, x := range []float64{-2, -0.31, -0.3, -0.29, 0, 0.1, 0.11, 1, -0.3 - h, 0.1 - h} {
			want := base.At(x) + other.At(x)
			if got := s.At(x); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				// Points exactly on a merged break may legitimately
				// resolve to the other side when two breaks nearly
				// coincide; allow a one-sided re-check.
				eps := 1e-9
				wl := base.At(x-eps) + other.At(x-eps)
				wr := base.At(x+eps) + other.At(x+eps)
				if math.Abs(got-wl) > 1e-6*(1+math.Abs(wl)) && math.Abs(got-wr) > 1e-6*(1+math.Abs(wr)) {
					t.Fatalf("trial %d h=%g: sum(%g) = %g, want %g", trial, h, x, got, want)
				}
			}
		}
	}
}

func TestMergeBreaksDedup(t *testing.T) {
	got := mergeBreaks([]float64{0, 1}, []float64{1, 2})
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("merge = %v", got)
	}
}

func TestIntervalPoint(t *testing.T) {
	br := []float64{0, 1}
	if p := intervalPoint(br, 0); p >= 0 {
		t.Fatalf("left unbounded point %g", p)
	}
	if p := intervalPoint(br, 1); p <= 0 || p >= 1 {
		t.Fatalf("middle point %g", p)
	}
	if p := intervalPoint(br, 2); p <= 1 {
		t.Fatalf("right unbounded point %g", p)
	}
	if intervalPoint(nil, 0) != 0 {
		t.Fatal("empty grid point")
	}
}
