package poly

import "sort"

// AddPiecewise returns the piecewise polynomial a + b. The result's
// breakpoints are the merged breakpoint sets; on every interval the
// piece is the sum of the covering pieces of a and b. Degrees add
// nothing: deg(sum) = max(deg a_i, deg b_j), which is what keeps the
// paper's combined source+drain charge solvable in closed form.
func AddPiecewise(a, b Piecewise) Piecewise {
	breaks := mergeBreaks(a.Breaks, b.Breaks)
	pieces := make([]Poly, len(breaks)+1)
	for i := range pieces {
		// A representative point inside interval i selects the
		// covering pieces of a and b.
		x := intervalPoint(breaks, i)
		pieces[i] = a.Pieces[a.PieceIndex(x)].Add(b.Pieces[b.PieceIndex(x)])
	}
	return Piecewise{Breaks: breaks, Pieces: pieces}
}

// mergeBreaks merges two ascending break lists, dropping exact and
// near-coincident duplicates.
func mergeBreaks(x, y []float64) []float64 {
	all := make([]float64, 0, len(x)+len(y))
	all = append(all, x...)
	all = append(all, y...)
	sort.Float64s(all)
	out := all[:0]
	for _, v := range all {
		if len(out) == 0 || v-out[len(out)-1] > 1e-12 {
			out = append(out, v)
		}
	}
	return append([]float64(nil), out...)
}

// intervalPoint returns a point strictly inside interval i of the break
// grid (piece 0 is (-inf, b0], the last piece (b_last, +inf)). For
// finite intervals it returns the midpoint; for the two unbounded ends
// a point one unit beyond the nearest break. Interval membership at the
// closed right endpoint is honoured by choosing points away from
// boundaries.
func intervalPoint(breaks []float64, i int) float64 {
	n := len(breaks)
	switch {
	case n == 0:
		return 0
	case i == 0:
		return breaks[0] - 1
	case i == n:
		return breaks[n-1] + 1
	default:
		return 0.5 * (breaks[i-1] + breaks[i])
	}
}
