package poly

import (
	"math"
	"sort"
)

// RealRoots returns the real roots of p in ascending order. Degrees 1-3
// are solved in closed form (linear formula, numerically stable
// quadratic formula, trigonometric/Cardano cubic); this closed-form
// path is exactly what replaces Newton–Raphson in the paper's
// self-consistent voltage solution. Higher degrees fall back to
// recursive bracketing between the extrema of p (roots of p').
//
// Multiple roots are reported once. The zero polynomial and constants
// report no roots.
func RealRoots(p Poly) []float64 {
	p2 := p
	p2.trim()
	switch p2.Degree() {
	case -1, 0:
		return nil
	case 1:
		return []float64{-p2.Coef[0] / p2.Coef[1]}
	case 2:
		return quadraticRoots(p2.Coef[0], p2.Coef[1], p2.Coef[2])
	case 3:
		return cubicRoots(p2.Coef[0], p2.Coef[1], p2.Coef[2], p2.Coef[3])
	default:
		return bracketedRoots(p2)
	}
}

// quadraticRoots solves c0 + c1*x + c2*x^2 = 0 with the cancellation-safe
// form of the quadratic formula.
func quadraticRoots(c0, c1, c2 float64) []float64 {
	disc := c1*c1 - 4*c2*c0
	if disc < 0 {
		return nil
	}
	if disc == 0 { //lint:allow floatcmp closed-form discriminant branch
		return []float64{-c1 / (2 * c2)}
	}
	s := math.Sqrt(disc)
	var q float64
	if c1 >= 0 {
		q = -0.5 * (c1 + s)
	} else {
		q = -0.5 * (c1 - s)
	}
	r1 := q / c2
	var roots []float64
	if q != 0 { //lint:allow floatcmp exact-zero divisor guard
		roots = []float64{r1, c0 / q}
	} else {
		// c1 == 0 and c0 == 0: double root at 0 handled above; here
		// c0/c2 < 0 gives symmetric pair.
		roots = []float64{r1, -r1}
	}
	sort.Float64s(roots)
	if roots[0] == roots[1] { //lint:allow floatcmp dedups the exactly repeated quadratic root
		roots = roots[:1]
	}
	return roots
}

// cubicRoots solves c0 + c1*x + c2*x^2 + c3*x^3 = 0.
func cubicRoots(c0, c1, c2, c3 float64) []float64 {
	// Normalise to x^3 + a*x^2 + b*x + c.
	a := c2 / c3
	b := c1 / c3
	c := c0 / c3
	// Depressed cubic t^3 + p*t + q with x = t - a/3.
	p := b - a*a/3
	q := 2*a*a*a/27 - a*b/3 + c
	shift := -a / 3

	var roots []float64
	disc := q*q/4 + p*p*p/27
	switch {
	case disc > 0:
		// One real root (Cardano), written to avoid cancellation.
		sq := math.Sqrt(disc)
		u := math.Cbrt(-q/2 + sq)
		v := math.Cbrt(-q/2 - sq)
		roots = []float64{u + v + shift}
	case disc == 0: //lint:allow floatcmp closed-form discriminant branch
		if p == 0 { //lint:allow floatcmp exact triple root
			roots = []float64{shift}
		} else { // double + simple root
			r1 := 3 * q / p
			r2 := -3 * q / (2 * p)
			roots = []float64{r1 + shift, r2 + shift}
		}
	default:
		// Three distinct real roots: trigonometric method.
		m := 2 * math.Sqrt(-p/3)
		arg := 3 * q / (p * m)
		// Clamp against rounding slightly outside [-1,1].
		if arg > 1 {
			arg = 1
		} else if arg < -1 {
			arg = -1
		}
		theta := math.Acos(arg) / 3
		for k := 0; k < 3; k++ {
			roots = append(roots, m*math.Cos(theta-2*math.Pi*float64(k)/3)+shift)
		}
	}
	poly := New(c0, c1, c2, c3)
	for i := range roots {
		roots[i] = polish(poly, roots[i])
	}
	sort.Float64s(roots)
	return dedupe(roots)
}

// polish runs up to four Newton steps to tighten a closed-form root that
// may carry rounding from the trigonometric/Cardano path. It never moves
// a root by more than a small multiple of its magnitude.
func polish(p Poly, x float64) float64 {
	d := p.Deriv()
	for i := 0; i < 4; i++ {
		fx := p.At(x)
		if fx == 0 { //lint:allow floatcmp residual exactly zero is an exact root
			return x
		}
		dx := d.At(x)
		if dx == 0 { //lint:allow floatcmp exact-zero derivative guard before dividing
			return x
		}
		step := fx / dx
		lim := 1e-3 * (math.Abs(x) + 1)
		if math.Abs(step) > lim {
			return x // closed form was already the authority
		}
		x -= step
	}
	return x
}

func dedupe(sorted []float64) []float64 {
	if len(sorted) == 0 {
		return sorted
	}
	out := sorted[:1]
	for _, r := range sorted[1:] {
		prev := out[len(out)-1]
		tol := 1e-10 * (math.Abs(prev) + math.Abs(r) + 1e-30)
		if math.Abs(r-prev) > tol {
			out = append(out, r)
		}
	}
	return out
}

// bracketedRoots finds the real roots of a degree >= 4 polynomial by
// recursively locating the extrema (roots of the derivative) and
// bisecting each sign-changing interval between consecutive extrema.
func bracketedRoots(p Poly) []float64 {
	crit := RealRoots(p.Deriv())
	// Establish an interval that contains all roots (Cauchy bound).
	bound := cauchyBound(p)
	pts := []float64{-bound}
	for _, c := range crit {
		if c > -bound && c < bound {
			pts = append(pts, c)
		}
	}
	pts = append(pts, bound)
	sort.Float64s(pts)
	var roots []float64
	for i := 0; i+1 < len(pts); i++ {
		a, b := pts[i], pts[i+1]
		fa, fb := p.At(a), p.At(b)
		if fa == 0 { //lint:allow floatcmp residual exactly zero is an exact root
			roots = append(roots, a)
			continue
		}
		if fa*fb < 0 {
			roots = append(roots, bisect(p, a, b))
		}
	}
	if p.At(bound) == 0 { //lint:allow floatcmp residual exactly zero is an exact root
		roots = append(roots, bound)
	}
	sort.Float64s(roots)
	return dedupe(roots)
}

func cauchyBound(p Poly) float64 {
	n := len(p.Coef)
	lead := math.Abs(p.Coef[n-1])
	mx := 0.0
	for _, c := range p.Coef[:n-1] {
		if a := math.Abs(c); a > mx {
			mx = a
		}
	}
	return 1 + mx/lead
}

func bisect(p Poly, a, b float64) float64 {
	fa := p.At(a)
	for i := 0; i < 200; i++ {
		m := 0.5 * (a + b)
		if m == a || m == b { //lint:allow floatcmp midpoint collapse: float resolution exhausted
			return m
		}
		fm := p.At(m)
		if fm == 0 { //lint:allow floatcmp residual exactly zero is an exact root
			return m
		}
		if fa*fm < 0 {
			b = m
		} else {
			a, fa = m, fm
		}
	}
	return 0.5 * (a + b)
}

// RootsIn returns the real roots of p inside the closed interval
// [lo, hi], in ascending order. A root landing within tol of an
// endpoint is included; tol scales with the interval width.
func RootsIn(p Poly, lo, hi float64) []float64 {
	tol := 1e-12 * (math.Abs(hi-lo) + 1)
	var out []float64
	for _, r := range RealRoots(p) {
		if r >= lo-tol && r <= hi+tol {
			out = append(out, math.Min(math.Max(r, lo), hi))
		}
	}
	return out
}
