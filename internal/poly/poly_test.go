package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewTrimsTrailingZeros(t *testing.T) {
	p := New(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
	if !New(0, 0).IsZero() {
		t.Fatal("all-zero coefficients should trim to the zero polynomial")
	}
}

func TestAtHorner(t *testing.T) {
	p := New(1, -2, 3) // 1 - 2x + 3x^2
	if got := p.At(2); got != 9 {
		t.Fatalf("p(2) = %g, want 9", got)
	}
	if got := p.At(0); got != 1 {
		t.Fatalf("p(0) = %g, want 1", got)
	}
	if (Poly{}).At(5) != 0 {
		t.Fatal("zero polynomial must evaluate to 0")
	}
}

func TestDeriv(t *testing.T) {
	p := New(5, 1, 2, 4) // 5 + x + 2x^2 + 4x^3
	d := p.Deriv()
	want := New(1, 4, 12)
	if len(d.Coef) != len(want.Coef) {
		t.Fatalf("deriv = %v", d.Coef)
	}
	for i := range want.Coef {
		if d.Coef[i] != want.Coef[i] {
			t.Fatalf("deriv = %v, want %v", d.Coef, want.Coef)
		}
	}
	if !New(7).Deriv().IsZero() {
		t.Fatal("derivative of a constant must be zero")
	}
}

func TestIntegInvertsDerivUpToConstant(t *testing.T) {
	p := New(3, -1, 0.5, 2)
	back := p.Deriv().Integ(p.Coef[0])
	for _, x := range []float64{-2, -0.5, 0, 1, 3.7} {
		if math.Abs(back.At(x)-p.At(x)) > 1e-12 {
			t.Fatalf("Integ(Deriv) differs at %g", x)
		}
	}
}

func TestAddScaleMul(t *testing.T) {
	p := New(1, 1)  // 1+x
	q := New(-1, 1) // -1+x
	s := p.Add(q)   // 2x
	if s.Degree() != 1 || s.Coef[1] != 2 || s.Coef[0] != 0 {
		t.Fatalf("Add = %v", s.Coef)
	}
	m := p.Mul(q) // x^2-1
	if m.Degree() != 2 || m.Coef[0] != -1 || m.Coef[1] != 0 || m.Coef[2] != 1 {
		t.Fatalf("Mul = %v", m.Coef)
	}
	if k := p.Scale(3); k.Coef[0] != 3 || k.Coef[1] != 3 {
		t.Fatalf("Scale = %v", k.Coef)
	}
	if !p.Add(p.Scale(-1)).IsZero() {
		t.Fatal("p - p should be zero")
	}
}

func TestShiftMatchesDirectEvaluation(t *testing.T) {
	p := New(2, -1, 0.5, 3)
	for _, h := range []float64{-1.5, 0, 0.32, 2} {
		q := p.Shift(h)
		for _, x := range []float64{-2, -0.3, 0, 1, 4} {
			if math.Abs(q.At(x)-p.At(x+h)) > 1e-10*(1+math.Abs(p.At(x+h))) {
				t.Fatalf("Shift(%g): q(%g)=%g, p(%g)=%g", h, x, q.At(x), x+h, p.At(x+h))
			}
		}
	}
}

func TestStringForms(t *testing.T) {
	if s := (Poly{}).String(); s != "0" {
		t.Fatalf("zero renders as %q", s)
	}
	if s := New(1, -2, 3).String(); s != "1 - 2*x + 3*x^2" {
		t.Fatalf("render %q", s)
	}
}

// Property: Shift(h) then Shift(-h) returns to the start.
func TestShiftRoundTripProperty(t *testing.T) {
	f := func(c [4]float64, h float64) bool {
		if math.IsNaN(h) || math.Abs(h) > 1e3 {
			return true
		}
		for _, v := range c {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return true
			}
		}
		p := New(c[0], c[1], c[2], c[3])
		q := p.Shift(h).Shift(-h)
		for _, x := range []float64{-1, 0, 1} {
			scale := 1 + math.Abs(p.At(x)) + math.Abs(h*h*h)*1e3
			if math.Abs(q.At(x)-p.At(x)) > 1e-6*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearRoot(t *testing.T) {
	r := RealRoots(New(-6, 2)) // 2x-6
	if len(r) != 1 || r[0] != 3 {
		t.Fatalf("roots = %v", r)
	}
}

func TestQuadraticRootsAllCases(t *testing.T) {
	// Two roots.
	r := RealRoots(New(-2, 1, 1)) // (x+2)(x-1)
	if len(r) != 2 || math.Abs(r[0]+2) > 1e-12 || math.Abs(r[1]-1) > 1e-12 {
		t.Fatalf("roots = %v", r)
	}
	// Double root.
	r = RealRoots(New(4, -4, 1)) // (x-2)^2
	if len(r) != 1 || math.Abs(r[0]-2) > 1e-12 {
		t.Fatalf("double root = %v", r)
	}
	// No real roots.
	if r = RealRoots(New(1, 0, 1)); len(r) != 0 {
		t.Fatalf("x^2+1 roots = %v", r)
	}
}

func TestQuadraticCancellationSafety(t *testing.T) {
	// x^2 - 1e8*x + 1 has roots ~1e8 and ~1e-8; the naive formula loses
	// the small one entirely.
	r := RealRoots(New(1, -1e8, 1))
	if len(r) != 2 {
		t.Fatalf("roots = %v", r)
	}
	if math.Abs(r[0]-1e-8)/1e-8 > 1e-6 {
		t.Fatalf("small root lost: %v", r[0])
	}
}

func TestCubicThreeRealRoots(t *testing.T) {
	// (x+1)(x-2)(x-5) = x^3 -6x^2 +3x +10
	r := RealRoots(New(10, 3, -6, 1))
	want := []float64{-1, 2, 5}
	if len(r) != 3 {
		t.Fatalf("roots = %v", r)
	}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-9 {
			t.Fatalf("roots = %v, want %v", r, want)
		}
	}
}

func TestCubicOneRealRoot(t *testing.T) {
	// (x-1)(x^2+1) = x^3 - x^2 + x - 1
	r := RealRoots(New(-1, 1, -1, 1))
	if len(r) != 1 || math.Abs(r[0]-1) > 1e-12 {
		t.Fatalf("roots = %v", r)
	}
}

func TestCubicTripleRoot(t *testing.T) {
	// (x-2)^3 = x^3 -6x^2 +12x -8
	r := RealRoots(New(-8, 12, -6, 1))
	if len(r) != 1 || math.Abs(r[0]-2) > 1e-7 {
		t.Fatalf("roots = %v", r)
	}
}

func TestCubicDoublePlusSimple(t *testing.T) {
	// (x-1)^2 (x+2) = x^3 - 3x + 2
	r := RealRoots(New(2, -3, 0, 1))
	if len(r) != 2 || math.Abs(r[0]+2) > 1e-9 || math.Abs(r[1]-1) > 1e-7 {
		t.Fatalf("roots = %v", r)
	}
}

func TestQuarticViaBracketing(t *testing.T) {
	// (x^2-1)(x^2-4): roots ±1, ±2.
	r := RealRoots(New(4, 0, -5, 0, 1))
	want := []float64{-2, -1, 1, 2}
	if len(r) != 4 {
		t.Fatalf("roots = %v", r)
	}
	for i := range want {
		if math.Abs(r[i]-want[i]) > 1e-9 {
			t.Fatalf("roots = %v", r)
		}
	}
}

// Property: every reported root really is a root (residual small
// relative to coefficient scale), for random cubics.
func TestCubicRootsAreRootsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		c := [4]float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if math.Abs(c[3]) < 1e-3 {
			c[3] = 1
		}
		p := New(c[0], c[1], c[2], c[3])
		scale := math.Abs(c[0]) + math.Abs(c[1]) + math.Abs(c[2]) + math.Abs(c[3])
		for _, r := range RealRoots(p) {
			m := 1 + math.Abs(r)
			if math.Abs(p.At(r)) > 1e-7*scale*m*m*m {
				t.Fatalf("trial %d: p=%v root %g residual %g", trial, c, r, p.At(r))
			}
		}
	}
}

// Property: a cubic built from three known real roots recovers them.
func TestCubicRootRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 300; trial++ {
		a, b, c := rng.NormFloat64()*3, rng.NormFloat64()*3, rng.NormFloat64()*3
		// Keep roots separated so multiplicity classification is stable.
		if math.Abs(a-b) < 0.05 || math.Abs(b-c) < 0.05 || math.Abs(a-c) < 0.05 {
			continue
		}
		p := New(-a, 1).Mul(New(-b, 1)).Mul(New(-c, 1))
		r := RealRoots(p)
		if len(r) != 3 {
			t.Fatalf("trial %d: roots(%g,%g,%g) = %v", trial, a, b, c, r)
		}
		want := []float64{a, b, c}
		sortThree(want)
		for i := range want {
			if math.Abs(r[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: got %v want %v", trial, r, want)
			}
		}
	}
}

func sortThree(v []float64) {
	for i := 0; i < len(v); i++ {
		for j := i + 1; j < len(v); j++ {
			if v[j] < v[i] {
				v[i], v[j] = v[j], v[i]
			}
		}
	}
}

func TestRootsIn(t *testing.T) {
	p := New(10, 3, -6, 1) // roots -1, 2, 5
	r := RootsIn(p, 0, 3)
	if len(r) != 1 || math.Abs(r[0]-2) > 1e-9 {
		t.Fatalf("RootsIn = %v", r)
	}
	// Endpoint inclusion.
	r = RootsIn(p, -1, 2)
	if len(r) != 2 {
		t.Fatalf("RootsIn endpoints = %v", r)
	}
}
