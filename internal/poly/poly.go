// Package poly implements the polynomial machinery behind the paper's
// piecewise non-linear charge approximation: dense polynomials with
// Horner evaluation and calculus, closed-form real-root extraction up to
// degree 3 (the property that makes the self-consistent voltage equation
// solvable without Newton–Raphson), piecewise polynomials over breakpoint
// grids, and (constrained) least-squares fitting.
package poly

import (
	"fmt"
	"strings"
)

// Poly is a dense polynomial; Coef[i] multiplies x^i. The zero value is
// the zero polynomial.
type Poly struct {
	Coef []float64
}

// New returns a polynomial with the given coefficients, constant term
// first. Trailing zero coefficients are trimmed.
func New(coef ...float64) Poly {
	p := Poly{Coef: append([]float64(nil), coef...)}
	p.trim()
	return p
}

func (p *Poly) trim() {
	n := len(p.Coef)
	for n > 0 && p.Coef[n-1] == 0 { //lint:allow floatcmp trims exactly-zero leading coefficients
		n--
	}
	p.Coef = p.Coef[:n]
}

// Degree returns the polynomial degree; the zero polynomial reports -1.
func (p Poly) Degree() int { return len(p.Coef) - 1 }

// IsZero reports whether p is identically zero.
func (p Poly) IsZero() bool { return len(p.Coef) == 0 }

// At evaluates p at x with Horner's scheme.
func (p Poly) At(x float64) float64 {
	s := 0.0
	for i := len(p.Coef) - 1; i >= 0; i-- {
		s = s*x + p.Coef[i]
	}
	return s
}

// Deriv returns the derivative polynomial.
func (p Poly) Deriv() Poly {
	if len(p.Coef) <= 1 {
		return Poly{}
	}
	d := make([]float64, len(p.Coef)-1)
	for i := 1; i < len(p.Coef); i++ {
		d[i-1] = float64(i) * p.Coef[i]
	}
	q := Poly{Coef: d}
	q.trim()
	return q
}

// Integ returns the antiderivative with integration constant c.
func (p Poly) Integ(c float64) Poly {
	out := make([]float64, len(p.Coef)+1)
	out[0] = c
	for i, a := range p.Coef {
		out[i+1] = a / float64(i+1)
	}
	q := Poly{Coef: out}
	q.trim()
	return q
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p.Coef)
	if len(q.Coef) > n {
		n = len(q.Coef)
	}
	out := make([]float64, n)
	copy(out, p.Coef)
	for i, a := range q.Coef {
		out[i] += a
	}
	r := Poly{Coef: out}
	r.trim()
	return r
}

// Scale returns k*p.
func (p Poly) Scale(k float64) Poly {
	out := make([]float64, len(p.Coef))
	for i, a := range p.Coef {
		out[i] = k * a
	}
	r := Poly{Coef: out}
	r.trim()
	return r
}

// Mul returns the product p*q.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return Poly{}
	}
	out := make([]float64, len(p.Coef)+len(q.Coef)-1)
	for i, a := range p.Coef {
		if a == 0 { //lint:allow floatcmp exact zeros contribute nothing to the product
			continue
		}
		for j, b := range q.Coef {
			out[i+j] += a * b
		}
	}
	r := Poly{Coef: out}
	r.trim()
	return r
}

// Shift returns the polynomial q(x) = p(x + h), p re-expanded so that
// evaluating q at x gives p at x+h. Used to move charge fits between the
// normalised variable u = VSC - EF/q and the raw VSC axis.
func (p Poly) Shift(h float64) Poly {
	n := len(p.Coef)
	if n == 0 {
		return Poly{}
	}
	// Taylor shift by repeated Horner accumulation.
	c := append([]float64(nil), p.Coef...)
	for j := 0; j < n-1; j++ {
		for i := n - 2; i >= j; i-- {
			c[i] += h * c[i+1]
		}
	}
	q := Poly{Coef: c}
	q.trim()
	return q
}

// String renders the polynomial in conventional ascending-power form.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	first := true
	for i, a := range p.Coef {
		if a == 0 { //lint:allow floatcmp exact zeros are not printed
			continue
		}
		if !first {
			if a >= 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
				a = -a
			}
		}
		switch i {
		case 0:
			fmt.Fprintf(&b, "%g", a)
		case 1:
			fmt.Fprintf(&b, "%g*x", a)
		default:
			fmt.Fprintf(&b, "%g*x^%d", a, i)
		}
		first = false
	}
	return b.String()
}
