package poly

import (
	"math"
	"math/rand"
	"testing"
)

// model1Like builds a piecewise function shaped like the paper's
// Model 1: linear / quadratic / zero with C1 joins at -0.08 and +0.08.
func model1Like(t *testing.T) Piecewise {
	t.Helper()
	// Quadratic q(x) = k*(x-b)^2 on [a,b] with q(b)=q'(b)=0 matches the
	// zero piece with C1; linear piece is its tangent at a.
	a, b, k := -0.08, 0.08, 2.0
	quad := New(k*b*b, -2*k*b, k)
	slope := quad.Deriv().At(a)
	lin := New(quad.At(a)-slope*a, slope)
	pw, err := NewPiecewise([]float64{a, b}, []Poly{lin, quad, {}})
	if err != nil {
		t.Fatal(err)
	}
	return pw
}

func TestNewPiecewiseValidation(t *testing.T) {
	if _, err := NewPiecewise([]float64{0}, []Poly{New(1)}); err == nil {
		t.Fatal("piece/break count mismatch should fail")
	}
	if _, err := NewPiecewise([]float64{1, 1}, []Poly{{}, {}, {}}); err == nil {
		t.Fatal("non-increasing breaks should fail")
	}
	if _, err := NewPiecewise([]float64{2, 1}, []Poly{{}, {}, {}}); err == nil {
		t.Fatal("decreasing breaks should fail")
	}
}

func TestPieceIndexConvention(t *testing.T) {
	pw := model1Like(t)
	cases := []struct {
		x    float64
		want int
	}{
		{-1, 0}, {-0.08, 0}, {-0.079, 1}, {0.08, 1}, {0.081, 2}, {5, 2},
	}
	for _, c := range cases {
		if got := pw.PieceIndex(c.x); got != c.want {
			t.Errorf("PieceIndex(%g) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestPiecewiseC1Continuity(t *testing.T) {
	pw := model1Like(t)
	c0, c1 := pw.ContinuityError()
	if c0 > 1e-12 || c1 > 1e-12 {
		t.Fatalf("continuity errors c0=%g c1=%g", c0, c1)
	}
}

func TestPiecewiseAtAgreesWithPieces(t *testing.T) {
	pw := model1Like(t)
	if v := pw.At(1); v != 0 {
		t.Fatalf("zero region gives %g", v)
	}
	if v := pw.At(0); math.Abs(v-pw.Pieces[1].At(0)) > 1e-15 {
		t.Fatalf("quadratic region mismatch: %g", v)
	}
	if v := pw.At(-0.5); math.Abs(v-pw.Pieces[0].At(-0.5)) > 1e-15 {
		t.Fatalf("linear region mismatch: %g", v)
	}
}

func TestPiecewiseDeriv(t *testing.T) {
	pw := model1Like(t)
	d := pw.Deriv()
	if got := d.At(-0.5); math.Abs(got-pw.Pieces[0].Coef[1]) > 1e-15 {
		t.Fatalf("derivative of linear region = %g", got)
	}
	if d.At(1) != 0 {
		t.Fatal("derivative of zero region must be 0")
	}
}

func TestPiecewiseShift(t *testing.T) {
	pw := model1Like(t)
	h := 0.32
	sh := pw.Shift(h)
	for _, x := range []float64{-1, -0.4, -0.1, 0, 0.05, 0.3} {
		if math.Abs(sh.At(x)-pw.At(x+h)) > 1e-12 {
			t.Fatalf("Shift mismatch at %g: %g vs %g", x, sh.At(x), pw.At(x+h))
		}
	}
	// Breaks moved by -h.
	if math.Abs(sh.Breaks[0]-(pw.Breaks[0]-h)) > 1e-15 {
		t.Fatalf("break not shifted: %g", sh.Breaks[0])
	}
}

func TestPiecewiseScaleAndMaxDegree(t *testing.T) {
	pw := model1Like(t)
	if pw.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %d", pw.MaxDegree())
	}
	s := pw.Scale(-2)
	if math.Abs(s.At(-0.5)+2*pw.At(-0.5)) > 1e-15 {
		t.Fatal("Scale broken")
	}
}

func TestSolveMonotoneAcrossRegions(t *testing.T) {
	// F(x) = pw(x) + a*x + b where pw is increasing-ish: use the
	// negated charge shape (decreasing) negated => build an increasing
	// piecewise by scaling model1Like by -1 (model1Like decreases).
	q := model1Like(t) // decreasing from positive to 0
	inc := q.Scale(-1) // increasing from negative to 0
	a, bcoef := 0.5, 0.0

	// The true combined function f(x) = inc(x) + 0.5x is strictly
	// increasing. Solve f(x) = c for targets landing in each region.
	for _, target := range []float64{-0.4, -0.05, -0.01, 0.02, 0.3} {
		x, err := inc.SolveMonotone(a, bcoef-target)
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		got := inc.At(x) + a*x
		if math.Abs(got-target) > 1e-9 {
			t.Fatalf("target %g: f(%g) = %g", target, x, got)
		}
	}
}

func TestSolveMonotoneNoRoot(t *testing.T) {
	// pw = 0 everywhere, lin = 0: no sign change, no root.
	pw, _ := NewPiecewise([]float64{0}, []Poly{{}, {}})
	if _, err := pw.SolveMonotone(0, 1); err == nil {
		t.Fatal("expected error when no root exists")
	}
}

func TestSolveMonotoneRandomised(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := model1Like(t)
	inc := q.Scale(-1)
	for trial := 0; trial < 200; trial++ {
		a := 0.1 + rng.Float64()*2
		b := rng.NormFloat64() * 0.2
		x, err := inc.SolveMonotone(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r := inc.At(x) + a*x + b; math.Abs(r) > 1e-9 {
			t.Fatalf("trial %d: residual %g at %g", trial, r, x)
		}
	}
}

func TestFitExactPolynomial(t *testing.T) {
	// Fitting samples of an exact cubic recovers it.
	truth := New(0.3, -1.2, 0.5, 2)
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = -1 + 2*float64(i)/29
		ys[i] = truth.At(xs[i])
	}
	p, err := Fit(xs, ys, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth.Coef {
		if math.Abs(p.Coef[i]-truth.Coef[i]) > 1e-10 {
			t.Fatalf("coef %d: %g vs %g", i, p.Coef[i], truth.Coef[i])
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]float64{1, 2}, []float64{1}, 1); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := Fit([]float64{1, 2}, []float64{1, 2}, 5); err == nil {
		t.Fatal("underdetermined should fail")
	}
}

func TestFitPiecewiseRecoversC1Model(t *testing.T) {
	// Sample the exact Model-1-like function and refit with the same
	// structure; the constrained fit must reproduce it and stay C1.
	truth := model1Like(t)
	var xs, ys []float64
	for x := -0.6; x <= 0.4; x += 0.004 {
		xs = append(xs, x)
		ys = append(ys, truth.At(x))
	}
	zero := Poly{}
	fit, err := FitPiecewise(truth.Breaks,
		[]PieceSpec{{Degree: 1}, {Degree: 2}, {Fixed: &zero}},
		xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := fit.ContinuityError()
	if c0 > 1e-9 || c1 > 1e-9 {
		t.Fatalf("fit not C1: %g %g", c0, c1)
	}
	for _, x := range []float64{-0.5, -0.2, -0.05, 0, 0.05, 0.2} {
		if math.Abs(fit.At(x)-truth.At(x)) > 1e-8 {
			t.Fatalf("fit differs at %g: %g vs %g", x, fit.At(x), truth.At(x))
		}
	}
}

func TestFitPiecewiseNoisyStaysC1(t *testing.T) {
	truth := model1Like(t)
	rng := rand.New(rand.NewSource(9))
	var xs, ys []float64
	for x := -0.6; x <= 0.4; x += 0.002 {
		xs = append(xs, x)
		ys = append(ys, truth.At(x)+1e-4*rng.NormFloat64())
	}
	zero := Poly{}
	fit, err := FitPiecewise(truth.Breaks,
		[]PieceSpec{{Degree: 1}, {Degree: 2}, {Fixed: &zero}},
		xs, ys, 1)
	if err != nil {
		t.Fatal(err)
	}
	c0, c1 := fit.ContinuityError()
	if c0 > 1e-8 || c1 > 1e-8 {
		t.Fatalf("noisy fit lost C1: %g %g", c0, c1)
	}
	// Fit quality should beat the noise floor comfortably.
	if r := RMS(fit.At, xs, ys); r > 5e-4 {
		t.Fatalf("rms = %g", r)
	}
}

func TestFitPiecewiseValidation(t *testing.T) {
	zero := Poly{}
	if _, err := FitPiecewise([]float64{0}, []PieceSpec{{Degree: 1}}, nil, nil, 1); err == nil {
		t.Fatal("spec/break mismatch should fail")
	}
	if _, err := FitPiecewise([]float64{1, 0}, []PieceSpec{{Degree: 1}, {Degree: 1}, {Fixed: &zero}}, nil, nil, 1); err == nil {
		t.Fatal("unsorted breaks should fail")
	}
	if _, err := FitPiecewise([]float64{0}, []PieceSpec{{Degree: 3}, {Fixed: &zero}},
		[]float64{-1, -2}, []float64{1, 2}, 1); err == nil {
		t.Fatal("too few samples should fail")
	}
}

func TestFitPiecewiseAllFixed(t *testing.T) {
	one := New(1)
	zero := Poly{}
	// Incompatible fixed pieces must be rejected when continuity is on.
	if _, err := FitPiecewise([]float64{0}, []PieceSpec{{Fixed: &one}, {Fixed: &zero}}, nil, nil, 0); err == nil {
		t.Fatal("discontinuous fixed pieces should fail")
	}
	// Compatible fixed pieces pass through.
	pw, err := FitPiecewise([]float64{0}, []PieceSpec{{Fixed: &zero}, {Fixed: &zero}}, nil, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pw.At(3) != 0 {
		t.Fatal("assembled fixed piecewise wrong")
	}
}

func TestRMSHelper(t *testing.T) {
	f := func(x float64) float64 { return x }
	if RMS(f, nil, nil) != 0 {
		t.Fatal("empty RMS should be 0")
	}
	got := RMS(f, []float64{0, 1}, []float64{1, 1})
	if math.Abs(got-math.Sqrt(0.5)) > 1e-15 {
		t.Fatalf("RMS = %g", got)
	}
}
