package poly

import (
	"fmt"
	"math"

	"cntfet/internal/linalg"
)

// Fit returns the degree-deg polynomial least-squares fit to the sample
// points (xs, ys) using Householder QR on the Vandermonde matrix.
func Fit(xs, ys []float64, deg int) (Poly, error) {
	if len(xs) != len(ys) {
		return Poly{}, fmt.Errorf("poly: Fit sample length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < deg+1 {
		return Poly{}, fmt.Errorf("poly: %d samples cannot determine degree %d", len(xs), deg)
	}
	a := linalg.NewMatrix(len(xs), deg+1)
	for i, x := range xs {
		v := 1.0
		for j := 0; j <= deg; j++ {
			a.Set(i, j, v)
			v *= x
		}
	}
	c, _, err := linalg.LeastSquares(a, ys)
	if err != nil {
		return Poly{}, err
	}
	return Poly{Coef: c}, nil
}

// PieceSpec describes one piece of a piecewise fit: either a free
// polynomial of the given degree, or a fixed polynomial excluded from
// the optimisation (the paper's "zero" region is Fixed = the zero
// polynomial).
type PieceSpec struct {
	Degree int
	Fixed  *Poly
}

// FitPiecewise jointly fits a piecewise polynomial to the samples
// (xs, ys) given interior breakpoints and per-piece specifications,
// enforcing continuity of derivatives up to order `continuity` at every
// breakpoint (the paper requires continuity of value and first
// derivative: continuity = 1).
//
// The fit solves an equality-constrained linear least-squares problem
// via the KKT system
//
//	| 2·AᵀA  Cᵀ | |c|   |2·Aᵀy|
//	|  C     0  | |λ| = |  d  |
//
// where A is the block Vandermonde design matrix (each sample row only
// touches the coefficients of the piece containing it) and C encodes
// the continuity constraints plus the matching conditions against fixed
// pieces.
func FitPiecewise(breaks []float64, specs []PieceSpec, xs, ys []float64, continuity int) (Piecewise, error) {
	orders := make([]int, len(breaks))
	for i := range orders {
		orders[i] = continuity
	}
	return FitPiecewiseOrders(breaks, specs, xs, ys, orders)
}

// FitPiecewiseOrders is FitPiecewise with an independent continuity
// order per breakpoint (orders[i] applies at breaks[i]; 0 = value only,
// 1 = value and first derivative). The paper's models use C¹ at joins
// between free polynomials but only C⁰ where the curve enters the zero
// region — full C¹ against the zero piece would leave Model 1 a single
// degree of freedom.
func FitPiecewiseOrders(breaks []float64, specs []PieceSpec, xs, ys []float64, orders []int) (Piecewise, error) {
	return FitPiecewiseWeighted(breaks, specs, xs, ys, nil, orders)
}

// FitPiecewiseWeighted is FitPiecewiseOrders with per-sample weights
// (nil means uniform): it minimises Σ w_i·(p(x_i) − y_i)². Weights let
// the charge fit trade absolute accuracy in the high-charge region for
// relative accuracy near the knee, where the subthreshold drain
// current is exponentially sensitive.
func FitPiecewiseWeighted(breaks []float64, specs []PieceSpec, xs, ys, weights []float64, orders []int) (Piecewise, error) {
	if weights != nil && len(weights) != len(xs) {
		return Piecewise{}, fmt.Errorf("poly: %d weights for %d samples", len(weights), len(xs))
	}
	if len(specs) != len(breaks)+1 {
		return Piecewise{}, fmt.Errorf("poly: %d specs need %d breaks, got %d", len(specs), len(specs)-1, len(breaks))
	}
	if len(orders) != len(breaks) {
		return Piecewise{}, fmt.Errorf("poly: %d continuity orders for %d breaks", len(orders), len(breaks))
	}
	if len(xs) != len(ys) {
		return Piecewise{}, fmt.Errorf("poly: sample length mismatch")
	}
	maxOrder := 0
	for i, o := range orders {
		if o < 0 {
			orders[i] = 0
		}
		if o > maxOrder {
			maxOrder = o
		}
	}
	for i := 1; i < len(breaks); i++ {
		if !(breaks[i] > breaks[i-1]) {
			return Piecewise{}, fmt.Errorf("poly: breaks not strictly increasing")
		}
	}

	// Coefficient layout: offset[i] is the first unknown of piece i
	// (fixed pieces own no unknowns).
	nPieces := len(specs)
	offset := make([]int, nPieces)
	nUnknown := 0
	for i, s := range specs {
		offset[i] = nUnknown
		if s.Fixed == nil {
			if s.Degree < 0 {
				return Piecewise{}, fmt.Errorf("poly: piece %d has negative degree", i)
			}
			nUnknown += s.Degree + 1
		}
	}
	if nUnknown == 0 {
		// Everything fixed: assemble and verify the requested continuity.
		pieces := make([]Poly, nPieces)
		for i, s := range specs {
			pieces[i] = *s.Fixed
		}
		pw, err := NewPiecewise(breaks, pieces)
		if err != nil {
			return Piecewise{}, err
		}
		c0, c1 := pw.ContinuityError()
		if c0 > 1e-9 || (maxOrder >= 1 && c1 > 1e-9) {
			return Piecewise{}, fmt.Errorf("poly: fixed pieces violate continuity (c0=%g, c1=%g)", c0, c1)
		}
		return pw, nil
	}

	pw := Piecewise{Breaks: breaks} // for PieceIndex routing only

	// Design matrix and target.
	var rows int
	for _, x := range xs {
		if specs[pw.PieceIndex(x)].Fixed == nil {
			rows++
		}
	}
	if rows < nUnknown {
		return Piecewise{}, fmt.Errorf("poly: %d usable samples cannot determine %d coefficients", rows, nUnknown)
	}
	a := linalg.NewMatrix(rows, nUnknown)
	y := make([]float64, rows)
	r := 0
	for k, x := range xs {
		pi := pw.PieceIndex(x)
		if specs[pi].Fixed != nil {
			continue
		}
		w := 1.0
		if weights != nil {
			if weights[k] < 0 {
				return Piecewise{}, fmt.Errorf("poly: negative weight at sample %d", k)
			}
			w = math.Sqrt(weights[k])
		}
		v := w
		for j := 0; j <= specs[pi].Degree; j++ {
			a.Set(r, offset[pi]+j, v)
			v *= x
		}
		y[r] = w * ys[k]
		r++
	}

	// Constraint rows: for each break b between pieces i, i+1 and each
	// derivative order ord = 0..continuity:
	//   p_i^(ord)(b) - p_{i+1}^(ord)(b) = 0
	// with fixed-piece contributions moved to the right-hand side.
	type conRow struct {
		cols []int
		vals []float64
		rhs  float64
	}
	var cons []conRow
	for bi, b := range breaks {
		left, right := bi, bi+1
		for ord := 0; ord <= orders[bi]; ord++ {
			var c conRow
			addSide := func(pi int, sign float64) {
				s := specs[pi]
				if s.Fixed != nil {
					c.rhs -= sign * nthDerivAt(*s.Fixed, ord, b)
					return
				}
				for j := ord; j <= s.Degree; j++ {
					c.cols = append(c.cols, offset[pi]+j)
					c.vals = append(c.vals, sign*derivMonomial(j, ord, b))
				}
			}
			addSide(left, 1)
			addSide(right, -1)
			if len(c.cols) == 0 {
				// Both sides fixed: verify consistency instead.
				if math.Abs(c.rhs) > 1e-9 {
					return Piecewise{}, fmt.Errorf("poly: fixed pieces violate continuity at break %g", b)
				}
				continue
			}
			cons = append(cons, c)
		}
	}

	// Assemble and solve the KKT system.
	nc := len(cons)
	n := nUnknown + nc
	kkt := linalg.NewMatrix(n, n)
	rhs := make([]float64, n)
	// 2*A^T*A block and 2*A^T*y.
	ata := a.T().Mul(a)
	aty := a.T().MulVec(y)
	for i := 0; i < nUnknown; i++ {
		for j := 0; j < nUnknown; j++ {
			kkt.Set(i, j, 2*ata.At(i, j))
		}
		rhs[i] = 2 * aty[i]
	}
	for ci, c := range cons {
		for k, col := range c.cols {
			kkt.Set(nUnknown+ci, col, c.vals[k])
			kkt.Set(col, nUnknown+ci, c.vals[k])
		}
		rhs[nUnknown+ci] = c.rhs
	}
	sol, err := linalg.SolveLU(kkt, rhs)
	if err != nil {
		return Piecewise{}, fmt.Errorf("poly: constrained fit: %w", err)
	}

	pieces := make([]Poly, nPieces)
	for i, s := range specs {
		if s.Fixed != nil {
			pieces[i] = *s.Fixed
			continue
		}
		coef := make([]float64, s.Degree+1)
		copy(coef, sol[offset[i]:offset[i]+s.Degree+1])
		pieces[i] = New(coef...)
	}
	return NewPiecewise(breaks, pieces)
}

// derivMonomial returns d^ord/dx^ord [x^j] evaluated at x.
func derivMonomial(j, ord int, x float64) float64 {
	if ord > j {
		return 0
	}
	f := 1.0
	for k := 0; k < ord; k++ {
		f *= float64(j - k)
	}
	return f * math.Pow(x, float64(j-ord))
}

// nthDerivAt evaluates the ord-th derivative of p at x.
func nthDerivAt(p Poly, ord int, x float64) float64 {
	for k := 0; k < ord; k++ {
		p = p.Deriv()
	}
	return p.At(x)
}

// RMS returns the root-mean-square deviation of f from the samples.
func RMS(f func(float64) float64, xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for i, x := range xs {
		d := f(x) - ys[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}
