package poly

import (
	"fmt"
	"math"
	"sort"
)

// Piecewise is a piecewise polynomial over the whole real line.
// Breaks must be strictly increasing; Pieces has exactly one more
// element than Breaks. Piece i applies on (Breaks[i-1], Breaks[i]], with
// piece 0 on (-inf, Breaks[0]] and the last piece on (Breaks[n-1], +inf).
//
// The paper's Model 1 is the instance {linear, quadratic, zero} with
// breaks {EF/q-0.08, EF/q+0.08}; Model 2 is {linear, quadratic, cubic,
// zero} with breaks {EF/q-0.28, EF/q-0.03, EF/q+0.12}.
type Piecewise struct {
	Breaks []float64
	Pieces []Poly
}

// NewPiecewise validates and constructs a piecewise polynomial.
func NewPiecewise(breaks []float64, pieces []Poly) (Piecewise, error) {
	if len(pieces) != len(breaks)+1 {
		return Piecewise{}, fmt.Errorf("poly: %d pieces need %d breaks, got %d",
			len(pieces), len(pieces)-1, len(breaks))
	}
	for i := 1; i < len(breaks); i++ {
		if !(breaks[i] > breaks[i-1]) {
			return Piecewise{}, fmt.Errorf("poly: breaks not strictly increasing at %d (%g, %g)",
				i, breaks[i-1], breaks[i])
		}
	}
	return Piecewise{
		Breaks: append([]float64(nil), breaks...),
		Pieces: append([]Poly(nil), pieces...),
	}, nil
}

// PieceIndex returns the index of the piece covering x.
func (pw Piecewise) PieceIndex(x float64) int {
	// First break >= x; sort.SearchFloat64s gives first >= x for
	// ascending data, which matches the half-open convention
	// (x == Breaks[i] belongs to piece i).
	return sort.SearchFloat64s(pw.Breaks, x)
}

// At evaluates the piecewise polynomial at x.
func (pw Piecewise) At(x float64) float64 {
	return pw.Pieces[pw.PieceIndex(x)].At(x)
}

// Deriv returns the piecewise derivative (breaks unchanged).
func (pw Piecewise) Deriv() Piecewise {
	d := Piecewise{Breaks: append([]float64(nil), pw.Breaks...), Pieces: make([]Poly, len(pw.Pieces))}
	for i, p := range pw.Pieces {
		d.Pieces[i] = p.Deriv()
	}
	return d
}

// Shift returns the piecewise polynomial q(x) = pw(x + h); breaks move
// by -h accordingly.
func (pw Piecewise) Shift(h float64) Piecewise {
	out := Piecewise{Breaks: make([]float64, len(pw.Breaks)), Pieces: make([]Poly, len(pw.Pieces))}
	for i, b := range pw.Breaks {
		out.Breaks[i] = b - h
	}
	for i, p := range pw.Pieces {
		out.Pieces[i] = p.Shift(h)
	}
	return out
}

// Scale returns k*pw.
func (pw Piecewise) Scale(k float64) Piecewise {
	out := Piecewise{Breaks: append([]float64(nil), pw.Breaks...), Pieces: make([]Poly, len(pw.Pieces))}
	for i, p := range pw.Pieces {
		out.Pieces[i] = p.Scale(k)
	}
	return out
}

// MaxDegree returns the highest degree among the pieces.
func (pw Piecewise) MaxDegree() int {
	d := -1
	for _, p := range pw.Pieces {
		if p.Degree() > d {
			d = p.Degree()
		}
	}
	return d
}

// ContinuityError returns the largest absolute jump in value (c0) and in
// first derivative (c1) across all breakpoints. A correctly fitted
// model per the paper has both within fitting tolerance.
func (pw Piecewise) ContinuityError() (c0, c1 float64) {
	d := pw.Deriv()
	for i, b := range pw.Breaks {
		left, right := pw.Pieces[i].At(b), pw.Pieces[i+1].At(b)
		if j := math.Abs(right - left); j > c0 {
			c0 = j
		}
		dl, dr := d.Pieces[i].At(b), d.Pieces[i+1].At(b)
		if j := math.Abs(dr - dl); j > c1 {
			c1 = j
		}
	}
	return c0, c1
}

// SolveMonotone finds x with pw(x) + lin(x) = 0 where lin(x) = a*x + b
// and the total function is assumed strictly monotone increasing (the
// situation of the paper's eq. 7: CΣ·x plus monotone charge terms).
//
// It scans pieces from left to right, forms the per-piece polynomial
// pw_i(x) + a*x + b (degree <= 3 for the paper's models, so the root is
// closed-form), and accepts the unique root lying inside that piece's
// interval. Returns an error when no piece contains a root, which for a
// monotone function means the caller's assumption is violated.
func (pw Piecewise) SolveMonotone(a, b float64) (float64, error) {
	lin := New(b, a)
	n := len(pw.Pieces)
	for i := 0; i < n; i++ {
		lo, hi := math.Inf(-1), math.Inf(1)
		if i > 0 {
			lo = pw.Breaks[i-1]
		}
		if i < n-1 {
			hi = pw.Breaks[i]
		}
		total := pw.Pieces[i].Add(lin)
		// Quick interval rejection using monotonicity: the total must
		// change sign (or vanish) inside [lo,hi].
		flo := evalAtMaybeInf(total, lo, -1)
		fhi := evalAtMaybeInf(total, hi, +1)
		if flo > 0 || fhi < 0 {
			continue
		}
		roots := rootsInMaybeInf(total, lo, hi)
		if len(roots) > 0 {
			// Monotone: at most one genuine root per piece; take the
			// one bracketed by the sign change (first suffices).
			return roots[0], nil
		}
	}
	return 0, fmt.Errorf("poly: SolveMonotone found no root; function not monotone or no sign change")
}

// evalAtMaybeInf evaluates p at x, substituting the sign of the leading
// behaviour when x is infinite (dir = -1 for -inf, +1 for +inf).
func evalAtMaybeInf(p Poly, x float64, dir int) float64 {
	if !math.IsInf(x, 0) {
		return p.At(x)
	}
	q := p
	q.trim()
	d := q.Degree()
	if d < 0 {
		return 0
	}
	if d == 0 {
		return q.Coef[0]
	}
	lead := q.Coef[d]
	sign := 1.0
	if dir < 0 && d%2 == 1 {
		sign = -1
	}
	return sign * lead * math.Inf(1)
}

func rootsInMaybeInf(p Poly, lo, hi float64) []float64 {
	roots := RealRoots(p)
	tol := 1e-12
	var out []float64
	for _, r := range roots {
		if (math.IsInf(lo, -1) || r >= lo-tol) && (math.IsInf(hi, 1) || r <= hi+tol) {
			out = append(out, r)
		}
	}
	return out
}
