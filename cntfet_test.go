package cntfet

import (
	"math"
	"testing"
)

func TestPublicQuickstartPath(t *testing.T) {
	dev := DefaultDevice()
	fast, err := NewModel2(dev)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := fast.IDS(Bias{VG: 0.6, VD: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if ids < 1e-6 || ids > 1e-4 {
		t.Fatalf("quickstart IDS = %g A", ids)
	}
}

func TestTransistorInterfaceInterchangeable(t *testing.T) {
	dev := DefaultDevice()
	ref, err := NewReference(dev)
	if err != nil {
		t.Fatal(err)
	}
	m1, err := NewModel1(dev)
	if err != nil {
		t.Fatal(err)
	}
	models := []Transistor{ref, m1}
	b := Bias{VG: 0.5, VD: 0.4}
	var currents []float64
	for _, m := range models {
		op, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		currents = append(currents, op.IDS)
	}
	if rel := math.Abs(currents[1]-currents[0]) / currents[0]; rel > 0.15 {
		t.Fatalf("models disagree by %.0f%%", 100*rel)
	}
}

func TestFamilyAndMetricsEndToEnd(t *testing.T) {
	dev := DefaultDevice()
	ref, err := NewReference(dev)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FitFrom(ref, Model2Spec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	vgs := []float64{0.4, 0.6}
	vds := []float64{0, 0.2, 0.4, 0.6}
	famRef, err := Family(ref, vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	famFast, err := Family(m2, vgs, vds)
	if err != nil {
		t.Fatal(err)
	}
	errs, err := CompareFamilies(famFast, famRef)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e > 5 {
			t.Fatalf("VG=%g: error %.2f%% exceeds the paper's band", vgs[i], e)
		}
	}
}

func TestCustomSpecThroughPublicAPI(t *testing.T) {
	// A five-piece model (the paper's "more sections" extension).
	spec := Spec{
		Name:     "Model 3",
		Breaks:   []float64{-0.3, -0.1, 0.0, 0.12},
		Degrees:  []int{1, 2, 3, 3},
		ZeroTail: true,
	}
	m, err := NewPiecewise(DefaultDevice(), spec, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ids, err := m.IDS(Bias{VG: 0.5, VD: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if ids <= 0 {
		t.Fatalf("custom spec IDS = %g", ids)
	}
}

func TestWideCustomSpecSolves(t *testing.T) {
	// Six regions (five breaks): exercises the fast solver's candidate
	// buffer beyond the paper models (regression for a buffer overrun)
	// and the even wider eight-break spec that falls back to the
	// generic path.
	for _, breaks := range [][]float64{
		{-0.4, -0.25, -0.12, -0.02, 0.12},
		{-0.5, -0.42, -0.34, -0.26, -0.18, -0.1, -0.02, 0.12},
	} {
		degrees := make([]int, len(breaks))
		degrees[0] = 1
		for i := 1; i < len(degrees); i++ {
			degrees[i] = 3
		}
		degrees[1] = 2
		spec := Spec{Name: "wide", Breaks: breaks, Degrees: degrees, ZeroTail: true}
		m, err := NewPiecewise(DefaultDevice(), spec, FitOptions{})
		if err != nil {
			t.Fatalf("%d breaks: %v", len(breaks), err)
		}
		for vd := 0.0; vd <= 0.6; vd += 0.1 {
			if _, err := m.IDS(Bias{VG: 0.5, VD: vd}); err != nil {
				t.Fatalf("%d breaks, VD=%g: %v", len(breaks), vd, err)
			}
		}
	}
}

func TestQualityExposed(t *testing.T) {
	ref, err := NewReference(DefaultDevice())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := FitFrom(ref, Model2Spec(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := Quality(ref, m2, FitOptions{})
	if q.RMS <= 0 || q.RMSRel <= 0 {
		t.Fatalf("quality = %+v", q)
	}
}

func TestJaveyDeviceExposed(t *testing.T) {
	dev := JaveyDevice()
	if dev.Geometry != Planar || dev.Tox != 50e-9 {
		t.Fatalf("Javey device %+v", dev)
	}
	if _, err := NewModel1(dev); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidDeviceSurfacesError(t *testing.T) {
	dev := DefaultDevice()
	dev.Diameter = -1
	if _, err := NewReference(dev); err == nil {
		t.Fatal("invalid device accepted by NewReference")
	}
	if _, err := NewModel1(dev); err == nil {
		t.Fatal("invalid device accepted by NewModel1")
	}
	if _, err := NewModel2(dev); err == nil {
		t.Fatal("invalid device accepted by NewModel2")
	}
	if _, err := NewPiecewise(dev, Model1Spec(), FitOptions{}); err == nil {
		t.Fatal("invalid device accepted by NewPiecewise")
	}
}
