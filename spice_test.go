package cntfet

import (
	"math"
	"strings"
	"testing"
)

// The public circuit surface: build, solve and probe without touching
// internal packages (everything below compiles purely against the
// aliases in spice.go).
func TestPublicCircuitSurface(t *testing.T) {
	fast, err := NewModel2(DefaultDevice())
	if err != nil {
		t.Fatal(err)
	}
	c := NewCircuit()
	c.MustAdd(&VSource{Label: "VDD", P: "vdd", N: Ground, Wave: DCWave(0.6)})
	c.MustAdd(&VSource{Label: "VIN", P: "in", N: Ground, Wave: DCWave(0.3)})
	c.MustAdd(&CNTFETElem{Label: "MP", D: "out", G: "in", S: "vdd", Model: fast, Pol: PType})
	c.MustAdd(&CNTFETElem{Label: "MN", D: "out", G: "in", S: Ground, Model: fast, Pol: NType})
	c.MustAdd(&CapacitorElem{Label: "CL", A: "out", B: Ground, Farads: 1e-15})

	sol, err := c.OperatingPoint(DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := sol.Voltage("out"); v < 0.1 || v > 0.5 {
		t.Fatalf("midpoint inverter output %g", v)
	}

	m, err := MeasureVTC(c, "VIN", "out", 0.6, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if m.Gain < 5 {
		t.Fatalf("gain %g", m.Gain)
	}

	freqs, err := DecadeFrequencies(1e6, 1e11, 5)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := c.AC("VIN", freqs, DCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Mag("out") <= pts[len(pts)-1].Mag("out") {
		t.Fatal("no AC rolloff through the public surface")
	}
}

func TestPublicDeckRunner(t *testing.T) {
	var b strings.Builder
	err := RunDeck(`divider
V1 in 0 4
R1 in out 1k
R2 out 0 1k
.op
.print v(out)
`, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "2") {
		t.Fatalf("output:\n%s", b.String())
	}
	if err := RunDeck("broken deck\nR1 x\n.op\n", &strings.Builder{}); err == nil {
		t.Fatal("bad deck accepted")
	}
}

func TestPublicLogicAndVariation(t *testing.T) {
	fast, err := NewModel2(DefaultDevice())
	if err != nil {
		t.Fatal(err)
	}
	l := &LogicLibrary{Model: fast, VDD: 0.6, LoadCap: 2e-15}
	c := NewCircuit()
	if err := l.Supply(c, "VDD"); err != nil {
		t.Fatal(err)
	}
	c.MustAdd(&VSource{Label: "VIN", P: "in", N: Ground,
		Wave: PulseWave{V1: 0, V2: 0.6, Rise: 10e-12, Width: 2e-9, Fall: 10e-12, Period: 1}})
	if err := l.Inverter(c, "inv", "in", "out"); err != nil {
		t.Fatal(err)
	}
	sols, err := c.Transient(TranOptions{Step: 10e-12, Stop: 1.5e-9})
	if err != nil {
		t.Fatal(err)
	}
	tpHL, _ := PropagationDelay(sols, "in", "out", 0.6)
	if tpHL <= 0 || tpHL > 1e-9 {
		t.Fatalf("tpHL = %g", tpHL)
	}

	res, err := MonteCarloIDS(DefaultDevice(), VariationSpread{EF: 0.01}, Bias{VG: 0.5, VD: 0.4}, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	sens, err := EFSensitivity(DefaultDevice(), Bias{VG: 0.5, VD: 0.4}, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Std <= 0 || sens <= 0 {
		t.Fatalf("std %g sens %g", res.Std, sens)
	}
	if ratio := res.Std / (sens * 0.01); math.Abs(ratio-1) > 0.5 {
		t.Fatalf("MC spread %g vs linearised %g", res.Std, sens*0.01)
	}
}
