// Benchmark harness: one benchmark (or group) per table and figure of
// the paper. Run everything with
//
//	go test -bench=. -benchmem
//
// Table I is the timing comparison itself; the figure benchmarks time
// the generation of each figure's data series; the accuracy-table
// benchmarks time one grid cell and report the measured RMS error
// through b.ReportMetric so accuracy and speed appear side by side.
// The printed rows/series of each table and figure come from the cmd/
// tools (cntbench, cntrms, cntiv, cntfit); EXPERIMENTS.md records the
// paper-vs-measured comparison.
package cntfet

import (
	"context"
	"testing"

	"cntfet/internal/circuit"
	"cntfet/internal/device"
	"cntfet/internal/expdata"
	"cntfet/internal/logic"
	"cntfet/internal/netlist"
	"cntfet/internal/sweep"
	"cntfet/internal/units"
	"cntfet/internal/variation"
)

// sharedModels caches the fitted models across benchmarks: fitting
// costs one theory sampling pass and would otherwise dominate every
// benchmark's setup.
type sharedModels struct {
	ref    *Reference
	refTab *Reference // identical device, ChargeTable attached and built
	m1, m2 *Piecewise
}

var shared *sharedModels

func getShared(b *testing.B) *sharedModels {
	b.Helper()
	if shared != nil {
		return shared
	}
	ref, err := NewReference(DefaultDevice())
	if err != nil {
		b.Fatal(err)
	}
	m1, err := FitFrom(ref, Model1Spec(), FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	m2, err := FitFrom(ref, Model2Spec(), FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	refTab, err := NewReference(DefaultDevice())
	if err != nil {
		b.Fatal(err)
	}
	refTab.EnableTable(TableOptions{}).Build()
	shared = &sharedModels{ref: ref, refTab: refTab, m1: m1, m2: m2}
	return shared
}

// paperFamily evaluates the Table-I workload: 7 gate curves, 61 VDS
// points.
func paperFamily(b *testing.B, m Transistor) {
	b.Helper()
	vgs := sweep.PaperGates()
	vds := units.Linspace(0, 0.6, 61)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Family(m, vgs, vds); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Table I: CPU time for the family of IDS characteristics ---

func BenchmarkTableI_FETToy(b *testing.B) { paperFamily(b, getShared(b).ref) }
func BenchmarkTableI_Model1(b *testing.B) { paperFamily(b, getShared(b).m1) }
func BenchmarkTableI_Model2(b *testing.B) { paperFamily(b, getShared(b).m2) }

// Single-operating-point version of the same comparison: the paper's
// per-evaluation claim, isolated from sweep plumbing.
func BenchmarkSolveOp_FETToy(b *testing.B) {
	s := getShared(b)
	bias := Bias{VG: 0.5, VD: 0.3}
	for i := 0; i < b.N; i++ {
		if _, err := s.ref.IDS(bias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveOp_Model1(b *testing.B) {
	s := getShared(b)
	bias := Bias{VG: 0.5, VD: 0.3}
	for i := 0; i < b.N; i++ {
		if _, err := s.m1.IDS(bias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveOp_Model2(b *testing.B) {
	s := getShared(b)
	bias := Bias{VG: 0.5, VD: 0.3}
	for i := 0; i < b.N; i++ {
		if _, err := s.m2.IDS(bias); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Tables II-IV: accuracy grids ---

// benchAccuracyCell times one (T, EF) table cell — a full model fit
// plus the VG x VDS comparison grid — and reports the worst measured
// RMS error as a benchmark metric.
func benchAccuracyCell(b *testing.B, ef, temp float64, spec Spec) {
	b.Helper()
	dev := DefaultDevice()
	dev.EF = ef
	dev.T = temp
	ref, err := NewReference(dev)
	if err != nil {
		b.Fatal(err)
	}
	vgs := sweep.TableGates()
	vds := units.Linspace(0, 0.6, 31)
	famRef, err := Family(ref, vgs, vds)
	if err != nil {
		b.Fatal(err)
	}
	worst := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := FitFrom(ref, spec, FitOptions{})
		if err != nil {
			b.Fatal(err)
		}
		fam, err := Family(m, vgs, vds)
		if err != nil {
			b.Fatal(err)
		}
		errs, err := CompareFamilies(fam, famRef)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range errs {
			if e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(worst, "worst-rms-%")
}

func BenchmarkTableII_EFm032_300K_Model1(b *testing.B) {
	benchAccuracyCell(b, -0.32, 300, Model1Spec())
}

func BenchmarkTableII_EFm032_300K_Model2(b *testing.B) {
	benchAccuracyCell(b, -0.32, 300, Model2Spec())
}

func BenchmarkTableIII_EFm05_450K_Model2(b *testing.B) {
	benchAccuracyCell(b, -0.5, 450, Model2Spec())
}

func BenchmarkTableIV_EF0_150K_Model2(b *testing.B) {
	benchAccuracyCell(b, 0, 150, Model2Spec())
}

// --- Table V / figures 10-11: experimental comparison ---

func BenchmarkTableV_JaveyComparison(b *testing.B) {
	vgs := expdata.TableGates()
	vds := expdata.PaperVDS(21)
	ds, err := expdata.Generate(vgs, vds)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := NewReference(JaveyDevice())
	if err != nil {
		b.Fatal(err)
	}
	m2, err := FitFrom(ref, Model2Spec(), FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	worst := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, vg := range vgs {
			exp, err := ds.Curve(vg)
			if err != nil {
				b.Fatal(err)
			}
			c, err := Trace(m2, vg, vds)
			if err != nil {
				b.Fatal(err)
			}
			e, err := RMSPercent(c, sweep.Curve{VG: vg, VDS: vds, IDS: exp})
			if err != nil {
				b.Fatal(err)
			}
			if e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(worst, "worst-rms-%")
}

// --- Figures 2-5: charge-curve fitting ---

func BenchmarkFig2_FitModel1(b *testing.B) {
	s := getShared(b)
	for i := 0; i < b.N; i++ {
		if _, err := FitFrom(s.ref, Model1Spec(), FitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_FitModel2(b *testing.B) {
	s := getShared(b)
	for i := 0; i < b.N; i++ {
		if _, err := FitFrom(s.ref, Model2Spec(), FitOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Figures 4/5: evaluating the fitted charge curves against the theory
// samples (the comparison the figures plot).
func benchChargeCompare(b *testing.B, m *Piecewise) {
	b.Helper()
	s := getShared(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := Quality(s.ref, m, FitOptions{})
		if q.RMS <= 0 {
			b.Fatal("degenerate quality")
		}
	}
}

func BenchmarkFig4_ChargeCompare_Model1(b *testing.B) { benchChargeCompare(b, getShared(b).m1) }
func BenchmarkFig5_ChargeCompare_Model2(b *testing.B) { benchChargeCompare(b, getShared(b).m2) }

// --- Figures 6-9: IV family generation ---

func benchFigureFamily(b *testing.B, temp, ef float64, vgs []float64, spec Spec) {
	b.Helper()
	dev := DefaultDevice()
	dev.T = temp
	dev.EF = ef
	ref, err := NewReference(dev)
	if err != nil {
		b.Fatal(err)
	}
	m, err := FitFrom(ref, spec, FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	vds := units.Linspace(0, 0.6, 61)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Family(m, vgs, vds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6_Family_Model1(b *testing.B) {
	benchFigureFamily(b, 300, -0.32, sweep.PaperGates(), Model1Spec())
}

func BenchmarkFig7_Family_Model2(b *testing.B) {
	benchFigureFamily(b, 300, -0.32, sweep.PaperGates(), Model2Spec())
}

func BenchmarkFig8_Family_150K_EF0(b *testing.B) {
	benchFigureFamily(b, 150, 0, units.Linspace(0.1, 0.6, 6), Model2Spec())
}

func BenchmarkFig9_Family_450K_EFm05(b *testing.B) {
	benchFigureFamily(b, 450, -0.5, units.Linspace(0.4, 0.6, 5), Model2Spec())
}

func BenchmarkFig10_JaveyFamily_Model1(b *testing.B) {
	ref, err := NewReference(JaveyDevice())
	if err != nil {
		b.Fatal(err)
	}
	m, err := FitFrom(ref, Model1Spec(), FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	vds := expdata.PaperVDS(41)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Family(m, expdata.PaperGates(), vds); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11_JaveyFamily_Model2(b *testing.B) {
	ref, err := NewReference(JaveyDevice())
	if err != nil {
		b.Fatal(err)
	}
	m, err := FitFrom(ref, Model2Spec(), FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	vds := expdata.PaperVDS(41)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Family(m, expdata.PaperGates(), vds); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Circuit-level extensions (the paper's motivating use case) ---

func BenchmarkCircuit_InverterVTC(b *testing.B) {
	deck, err := netlist.Parse(`cnt inverter
.model fast cnt level=2
VDD vdd 0 0.6
VIN in 0 0
MP out in vdd fast p
MN out in 0 fast n
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deck.Circuit.DCSweep("VIN", 0, 0.6, 0.02, circuit.DCOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircuit_InverterTransient(b *testing.B) {
	deck, err := netlist.Parse(`cnt inverter transient
.model fast cnt level=2
VDD vdd 0 0.6
VIN in 0 PULSE(0 0.6 0 10p 10p 2n 4n)
MP out in vdd fast p
MN out in 0 fast n
CL out 0 10f
`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := deck.Circuit.Transient(circuit.TranOptions{Step: 40e-12, Stop: 4e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md design-choice benchmarks) ---

// ablationRMS measures the worst per-gate RMS error of a fitted
// variant on the table-II 300 K grid.
func ablationRMS(b *testing.B, spec Spec, opt FitOptions) {
	b.Helper()
	s := getShared(b)
	vgs := sweep.TableGates()
	vds := units.Linspace(0, 0.6, 31)
	famRef, err := Family(s.ref, vgs, vds)
	if err != nil {
		b.Fatal(err)
	}
	worst := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := FitFrom(s.ref, spec, opt)
		if err != nil {
			b.Fatal(err)
		}
		fam, err := Family(m, vgs, vds)
		if err != nil {
			b.Fatal(err)
		}
		errs, err := CompareFamilies(fam, famRef)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range errs {
			if e > worst {
				worst = e
			}
		}
	}
	b.ReportMetric(worst, "worst-rms-%")
}

// Paper breakpoints vs numerically optimised ones (the paper's own
// boundary-selection procedure).
func BenchmarkAblation_Model1_PaperBreaks(b *testing.B) {
	ablationRMS(b, Model1Spec(), FitOptions{})
}

func BenchmarkAblation_Model1_OptimizedBreaks(b *testing.B) {
	ablationRMS(b, Model1Spec(), FitOptions{OptimizeBreaks: true})
}

// C0 vs C1 continuity against the zero tail (Model 1 collapses to one
// degree of freedom with TailC1).
func BenchmarkAblation_Model1_TailC1(b *testing.B) {
	spec := Model1Spec()
	spec.TailC1 = true
	ablationRMS(b, spec, FitOptions{})
}

// Knee-weighted vs uniform least squares.
func BenchmarkAblation_Model2_UniformWeights(b *testing.B) {
	ablationRMS(b, Model2Spec(), FitOptions{WeightFloor: -1})
}

func BenchmarkAblation_Model2_KneeWeighted(b *testing.B) {
	ablationRMS(b, Model2Spec(), FitOptions{})
}

// One model trained across 150-450 K vs fitted at the device's own
// temperature.
func BenchmarkAblation_Model2_MultiTemp(b *testing.B) {
	ablationRMS(b, Model2Spec(), FitOptions{TrainTemps: []float64{150, 300, 450}})
}

// Serial vs parallel reference sweeps (the piecewise models do not
// benefit — scheduling costs more than the solve).
func BenchmarkFamilyParallel_FETToy(b *testing.B) {
	s := getShared(b)
	vgs := sweep.PaperGates()
	vds := units.Linspace(0, 0.6, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FamilyParallel(s.ref, vgs, vds, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFamilySerial_FETToy(b *testing.B) {
	s := getShared(b)
	vgs := sweep.PaperGates()
	vds := units.Linspace(0, 0.6, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Family(s.ref, vgs, vds); err != nil {
			b.Fatal(err)
		}
	}
}

// Legacy point-per-task scheduler vs the chunked warm-starting one, on
// the same direct-quadrature reference (isolates scheduling +
// continuation from tabulation; cntbench -sweepbench measures the
// combined engine).
func BenchmarkFamilyParallel_Legacy(b *testing.B) {
	s := getShared(b)
	vgs := sweep.PaperGates()
	vds := units.Linspace(0, 0.6, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.FamilyParallelLegacy(s.ref, vgs, vds, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFamilyParallel_Chunked(b *testing.B) {
	s := getShared(b)
	vgs := sweep.PaperGates()
	vds := units.Linspace(0, 0.6, 31)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sweep.FamilyParallel(context.Background(), s.ref, vgs, vds, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// One self-consistent solve through each path. -benchmem is the
// allocation assertion for the tabulated paths: Table and WarmStart
// must report 0 B/op (the hard guarantee is TestTableLookupZeroAlloc
// in internal/fettoy).
func BenchmarkSolveVSC_Direct(b *testing.B) {
	s := getShared(b)
	bias := Bias{VG: 0.5, VD: 0.3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.ref.SolveVSC(bias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveVSC_Table(b *testing.B) {
	s := getShared(b)
	bias := Bias{VG: 0.5, VD: 0.3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.refTab.SolveVSC(bias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveVSC_WarmStart(b *testing.B) {
	s := getShared(b)
	bias := Bias{VG: 0.5, VD: 0.3}
	vsc, _, err := s.refTab.SolveVSC(bias)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.refTab.SolveVSCFrom(bias, vsc); err != nil {
			b.Fatal(err)
		}
	}
}

// Analytic vs finite-difference conductances: the Jacobian-assembly
// cost inside the circuit simulator.
func BenchmarkConductances_Analytic_Model2(b *testing.B) {
	s := getShared(b)
	bias := Bias{VG: 0.5, VD: 0.3}
	for i := 0; i < b.N; i++ {
		if _, _, _, err := s.m2.Conductances(bias); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConductances_Analytic_FETToy(b *testing.B) {
	s := getShared(b)
	bias := Bias{VG: 0.5, VD: 0.3}
	for i := 0; i < b.N; i++ {
		if _, _, _, err := s.ref.Conductances(bias); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Extensions: logic, AC, Monte Carlo ---

func BenchmarkLogic_RingOscillator3(b *testing.B) {
	s := getShared(b)
	l := &logic.Library{Model: s.m2, VDD: 0.6, LoadCap: 2e-15}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := circuit.New()
		if err := l.Supply(c, "VDD"); err != nil {
			b.Fatal(err)
		}
		nodes, err := l.RingOscillator(c, "ring", 3)
		if err != nil {
			b.Fatal(err)
		}
		sols, err := c.Transient(circuit.TranOptions{Step: 10e-12, Stop: 4e-9, DC: circuit.DCOptions{MaxIter: 300}})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := logic.OscillationFrequency(sols, nodes[0], 0.6, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircuit_ACSweepCommonSource(b *testing.B) {
	s := getShared(b)
	c := circuit.New()
	c.MustAdd(&circuit.VSource{Label: "VDD", P: "vdd", N: circuit.Ground, Wave: circuit.DC(0.6)})
	c.MustAdd(&circuit.VSource{Label: "VIN", P: "g", N: circuit.Ground, Wave: circuit.DC(0.45)})
	c.MustAdd(&circuit.Resistor{Label: "RL", A: "vdd", B: "d", Ohms: 30e3})
	c.MustAdd(&circuit.CNTFET{Label: "M1", D: "d", G: "g", S: circuit.Ground, Model: s.m2})
	c.MustAdd(&circuit.Capacitor{Label: "CL", A: "d", B: circuit.Ground, Farads: 50e-15})
	freqs, err := circuit.DecadeFrequencies(1e6, 1e12, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.AC("VIN", freqs, circuit.DCOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMonteCarlo_EFOnly_1000(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := variation.MonteCarloIDS(context.Background(), DefaultDevice(),
			variation.Spread{EF: 0.02}, Bias{VG: 0.5, VD: 0.4}, 1000, 1)
		if err != nil {
			b.Fatal(err)
		}
		if res.Mean <= 0 {
			b.Fatal("degenerate run")
		}
	}
}

// The paper's closing claim at face value: a 176-transistor 4-bit CNT
// adder solved with the fast model vs the full theory. This is the
// per-device evaluation speedup compounding through a real circuit's
// Newton iterations.
func benchAdder(b *testing.B, model device.Solver) {
	b.Helper()
	l := &logic.Library{Model: model, VDD: 0.6}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := circuit.New()
		if err := l.Supply(c, "VDD"); err != nil {
			b.Fatal(err)
		}
		var aN, bN []string
		for k := 0; k < 4; k++ {
			aN = append(aN, string(rune('a'))+string(rune('0'+k)))
			bN = append(bN, string(rune('b'))+string(rune('0'+k)))
			c.MustAdd(&circuit.VSource{Label: "VA" + aN[k], P: aN[k], N: circuit.Ground, Wave: circuit.DC(0.6)})
			c.MustAdd(&circuit.VSource{Label: "VB" + bN[k], P: bN[k], N: circuit.Ground, Wave: circuit.DC(0)})
		}
		c.MustAdd(&circuit.VSource{Label: "VCIN", P: "cin", N: circuit.Ground, Wave: circuit.DC(0)})
		if _, _, err := l.RippleCarryAdder(c, "add", aN, bN, "cin"); err != nil {
			b.Fatal(err)
		}
		if _, err := c.OperatingPoint(circuit.DCOptions{MaxIter: 400}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCircuit_Adder4Bit_Model2(b *testing.B) { benchAdder(b, getShared(b).m2) }

func BenchmarkCircuit_Adder4Bit_FETToy(b *testing.B) {
	if testing.Short() {
		b.Skip("full-theory circuit solve")
	}
	benchAdder(b, getShared(b).ref)
}
